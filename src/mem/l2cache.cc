#include "mem/l2cache.h"

#include "base/addr.h"
#include "base/log.h"
#include "base/poison.h"

namespace tlsim {

L2Cache::L2Cache(const MemConfig &cfg, VictimCache &victim)
    : victim_(victim), assoc_(cfg.l2Assoc),
      numSets_(cfg.l2Bytes / (cfg.l2Assoc * cfg.lineBytes)),
      numBanks_(cfg.l2Banks)
{
    if (!isPowerOf2(numSets_))
        panic("L2 set count %u not a power of two", numSets_);
    entries_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    overflowSet_.reserve(assoc_); // insert() refills it, one set at a time
}

L2Cache::Entry *
L2Cache::find(Addr line_num, std::uint8_t version)
{
    std::size_t base = setBase(line_num);
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (live(e) && e.lineNum == line_num && e.version == version)
            return &e;
    }
    return nullptr;
}

const L2Cache::Entry *
L2Cache::find(Addr line_num, std::uint8_t version) const
{
    return const_cast<L2Cache *>(this)->find(line_num, version);
}

bool
L2Cache::accessLine(Addr line_num)
{
    std::size_t base = setBase(line_num);
    bool found = false;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (live(e) && e.lineNum == line_num) {
            e.lru = ++useClock_;
            found = true;
        }
    }
    if (found)
        ++hits_;
    else
        ++misses_;
    return found;
}

bool
L2Cache::presentLine(Addr line_num) const
{
    std::size_t base = setBase(line_num);
    for (unsigned w = 0; w < assoc_; ++w) {
        const Entry &e = entries_[base + w];
        if (live(e) && e.lineNum == line_num)
            return true;
    }
    return false;
}

bool
L2Cache::hasEntry(Addr line_num, std::uint8_t version) const
{
    return find(line_num, version) != nullptr;
}

bool
L2Cache::insert(Addr line_num, std::uint8_t version)
{
    std::size_t base = setBase(line_num);

    // 1. One pass over the set: refresh an exact match, else note the
    //    first dead way (invalid, or stale generation).
    Entry *invalid = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (!live(e)) {
            if (!invalid)
                invalid = &e;
            continue;
        }
        if (e.lineNum == line_num && e.version == version) {
            e.lru = ++useClock_;
            return true;
        }
    }
    if (invalid) {
        *invalid = Entry{line_num, ++useClock_, gen_, version, true};
        return true;
    }

    // 2. Silently drop the LRU committed line with no speculative
    //    metadata (write-through discipline above us; the L2 holds the
    //    only on-chip copy, but committed data can be refetched).
    //    Candidates are probed in LRU order so the common case pays
    //    one speculative-state lookup, not one per committed way; LRU
    //    stamps are unique (a monotone clock), so `floor` advances
    //    past exactly the ways already rejected. All ways are live
    //    here, else pass 1 would have claimed the dead one.
    std::uint64_t floor = 0;
    for (;;) {
        Entry *cand = nullptr;
        for (unsigned w = 0; w < assoc_; ++w) {
            Entry &e = entries_[base + w];
            if (e.version != kCommittedVersion || e.lru < floor)
                continue;
            if (!cand || e.lru < cand->lru)
                cand = &e;
        }
        if (!cand)
            break;
        if (!hooks_ || !hooks_->lineHasSpecState(cand->lineNum)) {
            *cand = Entry{line_num, ++useClock_, gen_, version, true};
            return true;
        }
        floor = cand->lru + 1;
    }

    // 3. Every way holds speculative state: spill the LRU way to the
    //    speculative victim cache.
    if (victim_.full())
        victim_.dropOneCommitted([this](Addr l) {
            return hooks_ && hooks_->lineHasSpecState(l);
        });
    if (!victim_.full()) {
        Entry *spill = &entries_[base];
        for (unsigned w = 1; w < assoc_; ++w) {
            Entry &e = entries_[base + w];
            if (e.lru < spill->lru)
                spill = &e;
        }
        victim_.insert(spill->lineNum, spill->version);
        ++specEvictions_;
        *spill = Entry{line_num, ++useClock_, gen_, version, true};
        return true;
    }

    // 4. Overflow: not even the victim cache has room. Report the
    //    set's contents so the TLS engine can resolve it.
    ++overflows_;
    overflowSet_.clear();
    for (unsigned w = 0; w < assoc_; ++w) {
        const Entry &e = entries_[base + w];
        overflowSet_.emplace_back(e.lineNum, e.version);
    }
    return false;
}

void
L2Cache::remove(Addr line_num, std::uint8_t version)
{
    if (Entry *e = find(line_num, version))
        e->valid = false;
}

bool
L2Cache::renameToCommitted(Addr line_num, std::uint8_t version)
{
    Entry *e = find(line_num, version);
    if (!e)
        return false;
    if (Entry *old = find(line_num, kCommittedVersion))
        old->valid = false; // merge: the speculative version supersedes
    e->version = kCommittedVersion;
    return true;
}

void
L2Cache::reset()
{
    // Generation bump invalidates every entry without touching them.
    // Stale lru stamps never compete: dead ways are claimed before any
    // LRU comparison happens (insert pass 1). Entries keep valid=true
    // forever, so when the stamp wraps a pre-wrap entry would read as
    // live again — wipe the ways and re-seed, like LineSet::clear().
    if (++gen_ == 0) {
        entries_.assign(entries_.size(), Entry{});
        gen_ = 1;
    }
#if TLSIM_POISON
    // Every way is dead now (fresh generation); scribble the canary
    // line so a lookup that bypasses the generation check can only
    // ever match poison, never a stale real line.
    for (Entry &e : entries_)
        if (!live(e))
            e.lineNum = static_cast<Addr>(poison::kLine);
#endif
    overflowSet_.clear(); // stale overflow victims must not leak into
                          // the next run's squash decisions
    useClock_ = 0;
    hits_ = 0;
    misses_ = 0;
    specEvictions_ = 0;
    overflows_ = 0;
}

} // namespace tlsim
