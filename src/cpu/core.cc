#include "cpu/core.h"

namespace tlsim {

Core::Core(const CpuConfig &cfg, CpuId id)
    : cfg_(cfg), id_(id), gshare_(cfg.gshareBytes, cfg.gshareHistoryBits)
{
    if (cfg_.issueWidth > 0 &&
        (cfg_.issueWidth & (cfg_.issueWidth - 1)) == 0) {
        issueMask_ = cfg_.issueWidth - 1;
        issueShift_ = 0;
        for (unsigned w = cfg_.issueWidth; w > 1; w >>= 1)
            ++issueShift_;
    }
    // Ring capacity: smallest power of two that can hold every
    // outstanding load simultaneously (prepareLoad caps the count at
    // maxOutstandingLoads before each push).
    std::uint32_t cap = 2;
    while (cap < cfg_.maxOutstandingLoads + 1)
        cap <<= 1;
    loads_.resize(cap);
    ldMask_ = cap - 1;
}

CoreCheckpoint
Core::checkpoint() const
{
    return CoreCheckpoint{now_, breakdown_, instSeq_, slotFrac_};
}

void
Core::rewindTo(const CoreCheckpoint &cp, Cycle restart)
{
    if (restart < now_)
        restart = now_;
    ldHead_ = ldTail_ = 0;
    instSeq_ = cp.instSeq;
    slotFrac_ = cp.slotFrac;
    breakdown_.failSince(cp.breakdown);
    advanceTo(restart, Cat::Failed);
}

void
Core::reset()
{
    now_ = 0;
    breakdown_ = Breakdown{};
    instSeq_ = 0;
    slotFrac_ = 0;
    ldHead_ = ldTail_ = 0;
    gshare_.reset();
}

} // namespace tlsim
