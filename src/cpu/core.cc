#include "cpu/core.h"

#include <algorithm>

#include "base/log.h"

namespace tlsim {

Core::Core(const CpuConfig &cfg, CpuId id)
    : cfg_(cfg), id_(id), gshare_(cfg.gshareBytes, cfg.gshareHistoryBits)
{
}

void
Core::advanceTo(Cycle t, Cat cat)
{
    if (t <= now_)
        return;
    breakdown_[cat] += t - now_;
    now_ = t;
}

void
Core::dispatchSlots(std::uint64_t n)
{
    std::uint64_t total = slotFrac_ + n;
    Cycle cycles = total / cfg_.issueWidth;
    slotFrac_ = static_cast<unsigned>(total % cfg_.issueWidth);
    advanceTo(now_ + cycles, Cat::Busy);
    instSeq_ += n;
}

void
Core::retireCompleted()
{
    while (!loads_.empty() && loads_.front().readyAt <= now_)
        loads_.pop_front();
}

void
Core::waitOldestLoad()
{
    advanceTo(loads_.front().readyAt, Cat::CacheMiss);
    loads_.pop_front();
    retireCompleted();
}

void
Core::doCompute(std::uint64_t n, ComputeClass cls)
{
    unsigned serial_latency = 0;
    switch (cls) {
      case ComputeClass::IntDiv:
        serial_latency = cfg_.intDivLatency;
        break;
      case ComputeClass::FpDiv:
        serial_latency = cfg_.fpDivLatency;
        break;
      case ComputeClass::FpSqrt:
        serial_latency = cfg_.fpSqrtLatency;
        break;
      default:
        break;
    }
    if (serial_latency > 0) {
        // Unpipelined long-latency units: each op serializes.
        retireCompleted();
        advanceTo(now_ + n * serial_latency, Cat::Busy);
        instSeq_ += n;
        return;
    }

    // Pipelined work dispatches at issue width, but cannot run more
    // than a reorder buffer ahead of an incomplete load.
    while (n > 0) {
        retireCompleted();
        std::uint64_t chunk = n;
        if (!loads_.empty()) {
            InstCount ahead = instSeq_ - loads_.front().seq;
            if (ahead >= cfg_.robSize) {
                waitOldestLoad();
                continue;
            }
            chunk = std::min<std::uint64_t>(n, cfg_.robSize - ahead);
        }
        dispatchSlots(chunk);
        n -= chunk;
    }
}

void
Core::doBranch(Pc pc, bool taken)
{
    retireCompleted();
    if (!loads_.empty() && instSeq_ - loads_.front().seq >= cfg_.robSize)
        waitOldestLoad();
    dispatchSlots(1);
    if (!gshare_.predictAndUpdate(pc, taken)) {
        advanceTo(now_ + cfg_.branchPenalty, Cat::Busy);
        slotFrac_ = 0; // fetch redirect loses the partial dispatch group
    }
}

Cycle
Core::prepareLoad(bool dependent)
{
    retireCompleted();
    if (dependent && !loads_.empty()) {
        // Pointer chase: the address depends on the most recent load.
        advanceTo(loads_.back().readyAt, Cat::CacheMiss);
        retireCompleted();
    }
    while (loads_.size() >= cfg_.maxOutstandingLoads)
        waitOldestLoad();
    while (!loads_.empty() && instSeq_ - loads_.front().seq >= cfg_.robSize)
        waitOldestLoad();
    dispatchSlots(1);
    return now_;
}

void
Core::finishLoad(Cycle ready_at)
{
    if (ready_at > now_)
        loads_.push_back({instSeq_, ready_at});
}

void
Core::doStore(Cycle ready_at)
{
    retireCompleted();
    if (!loads_.empty() && instSeq_ - loads_.front().seq >= cfg_.robSize)
        waitOldestLoad();
    dispatchSlots(1);
    // Buffered write-through: the store's own latency is hidden, but
    // never lets the clock run backwards.
    if (ready_at > now_)
        advanceTo(ready_at, Cat::Busy);
}

void
Core::drainLoads()
{
    while (!loads_.empty())
        waitOldestLoad();
}

CoreCheckpoint
Core::checkpoint() const
{
    return CoreCheckpoint{now_, breakdown_, instSeq_, slotFrac_};
}

void
Core::rewindTo(const CoreCheckpoint &cp, Cycle restart)
{
    if (restart < now_)
        restart = now_;
    loads_.clear();
    instSeq_ = cp.instSeq;
    slotFrac_ = cp.slotFrac;
    breakdown_.failSince(cp.breakdown);
    advanceTo(restart, Cat::Failed);
}

void
Core::reset()
{
    now_ = 0;
    breakdown_ = Breakdown{};
    instSeq_ = 0;
    slotFrac_ = 0;
    loads_.clear();
    gshare_.reset();
}

} // namespace tlsim
