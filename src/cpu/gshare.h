/**
 * @file
 * GShare branch predictor (Table 1: 16KB of 2-bit counters, 8 bits of
 * global history). Fed by the Branch records of the trace, whose
 * outcomes come from the database's real control flow.
 */

#ifndef CPU_GSHARE_H
#define CPU_GSHARE_H

#include <cstdint>
#include <vector>

#include "base/addr.h"
#include "base/types.h"

namespace tlsim {

/** A classic GShare predictor over 2-bit saturating counters. */
class GShare
{
  public:
    GShare(unsigned table_bytes, unsigned history_bits)
        : counters_(table_bytes * 4, 1), // 4 counters per byte, weakly NT
          mask_(static_cast<std::uint32_t>(counters_.size() - 1)),
          historyBits_(history_bits)
    {
        if (!isPowerOf2(counters_.size()))
            counters_.resize(std::uint64_t{1}
                                 << log2Exact(counters_.size()),
                             1);
        mask_ = static_cast<std::uint32_t>(counters_.size() - 1);
        unsigned index_bits = log2Exact(counters_.size());
        historyShift_ =
            index_bits > historyBits_ ? index_bits - historyBits_ : 0;
    }

    /** Predict, update, and report whether the prediction was right. */
    bool
    predictAndUpdate(Pc pc, bool taken)
    {
        std::uint32_t idx = index(pc);
        std::uint8_t &ctr = counters_[idx];
        bool predict_taken = ctr >= 2;
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                   ((1u << historyBits_) - 1);
        bool correct = predict_taken == taken;
        ++branches_;
        if (!correct)
            ++mispredicts_;
        return correct;
    }

    void
    reset()
    {
        std::fill(counters_.begin(), counters_.end(), 1);
        history_ = 0;
        branches_ = 0;
        mispredicts_ = 0;
    }

    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::uint32_t
    index(Pc pc) const
    {
        return ((pc >> 2) ^ (history_ << historyShift_)) & mask_;
    }

    std::vector<std::uint8_t> counters_;
    std::uint32_t mask_;
    unsigned historyBits_;
    unsigned historyShift_ = 0;
    std::uint32_t history_ = 0;
    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace tlsim

#endif // CPU_GSHARE_H
