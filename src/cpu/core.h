/**
 * @file
 * Timing model of one out-of-order superscalar core (MIPS R10000-like,
 * Table 1). This is an interval model built for trace replay:
 *
 *  - instructions dispatch at up to issueWidth per cycle;
 *  - loads become outstanding entries; a load may overlap later work
 *    until (a) the reorder buffer fills behind it, (b) the per-core
 *    load MLP limit is reached, or (c) a later load is flagged as
 *    data-dependent on it (pointer chasing in the trace);
 *  - long-latency arithmetic (divide, square root) serializes;
 *  - branch mispredicts (GShare on the trace's real outcomes) redirect
 *    fetch with a fixed penalty.
 *
 * Every cycle the core's clock advances is attributed to exactly one
 * Cat bucket; sub-thread checkpoints snapshot the attribution so a
 * rewind can move the discarded span into Cat::Failed.
 */

#ifndef CPU_CORE_H
#define CPU_CORE_H

#include <cstdint>
#include <deque>

#include "base/config.h"
#include "base/types.h"
#include "core/trace.h"
#include "cpu/breakdown.h"
#include "cpu/gshare.h"

namespace tlsim {

/** Checkpointable timing state of a core (registers of the model). */
struct CoreCheckpoint
{
    Cycle now = 0;
    Breakdown breakdown;
    InstCount instSeq = 0;
    unsigned slotFrac = 0;
};

/** One CPU core's timing engine. */
class Core
{
  public:
    Core(const CpuConfig &cfg, CpuId id);

    CpuId id() const { return id_; }
    Cycle now() const { return now_; }

    /** Jump the clock without attribution (section barriers). */
    void setNow(Cycle t) { now_ = t; }

    /** Advance the clock to `t`, attributing the span to `cat`. */
    void advanceTo(Cycle t, Cat cat);

    /** Dynamic instructions dispatched so far (monotonic). */
    InstCount instSeq() const { return instSeq_; }

    Breakdown &breakdown() { return breakdown_; }
    const Breakdown &breakdown() const { return breakdown_; }

    // --- Record execution --------------------------------------------

    /** Execute n instructions of the given class. */
    void doCompute(std::uint64_t n, ComputeClass cls);

    /** Execute one branch; applies mispredict penalty. */
    void doBranch(Pc pc, bool taken);

    /**
     * Resolve structural/data hazards before a load issues. Returns
     * the issue cycle (the clock after any stalls, attributed to
     * Cat::CacheMiss since the stalls come from outstanding misses).
     */
    Cycle prepareLoad(bool dependent);

    /** Register an issued load's completion time. */
    void finishLoad(Cycle ready_at);

    /** Execute a store (buffered write-through; one dispatch slot). */
    void doStore(Cycle ready_at);

    /** Wait until every outstanding load completes (epoch end). */
    void drainLoads();

    // --- Checkpoint / rewind ------------------------------------------

    CoreCheckpoint checkpoint() const;

    /**
     * Rewind to `cp`, re-attributing all cycles since it to
     * Cat::Failed and restarting the clock at `restart` (>= the
     * checkpointed clock; the gap is Failed as well — it covers
     * squash delivery). Outstanding loads are discarded.
     */
    void rewindTo(const CoreCheckpoint &cp, Cycle restart);

    /** Drop in-flight state and reset the clock (experiment reset). */
    void reset();

    GShare &gshare() { return gshare_; }
    const GShare &gshare() const { return gshare_; }

    std::uint64_t mispredicts() const { return gshare_.mispredicts(); }

  private:
    struct OutstandingLoad
    {
        InstCount seq;  ///< instSeq_ at dispatch
        Cycle readyAt;
    };

    /** Consume n dispatch slots, advancing the clock (Busy). */
    void dispatchSlots(std::uint64_t n);

    /** Pop loads that completed by now_. */
    void retireCompleted();

    /** Stall (Cat::CacheMiss) until the oldest load completes. */
    void waitOldestLoad();

    CpuConfig cfg_;
    CpuId id_;
    GShare gshare_;

    Cycle now_ = 0;
    Breakdown breakdown_;
    InstCount instSeq_ = 0;
    unsigned slotFrac_ = 0; ///< dispatch slots used in the current cycle

    std::deque<OutstandingLoad> loads_;
};

} // namespace tlsim

#endif // CPU_CORE_H
