/**
 * @file
 * Timing model of one out-of-order superscalar core (MIPS R10000-like,
 * Table 1). This is an interval model built for trace replay:
 *
 *  - instructions dispatch at up to issueWidth per cycle;
 *  - loads become outstanding entries; a load may overlap later work
 *    until (a) the reorder buffer fills behind it, (b) the per-core
 *    load MLP limit is reached, or (c) a later load is flagged as
 *    data-dependent on it (pointer chasing in the trace);
 *  - long-latency arithmetic (divide, square root) serializes;
 *  - branch mispredicts (GShare on the trace's real outcomes) redirect
 *    fetch with a fixed penalty.
 *
 * Every cycle the core's clock advances is attributed to exactly one
 * Cat bucket; sub-thread checkpoints snapshot the attribution so a
 * rewind can move the discarded span into Cat::Failed.
 *
 * The per-record methods are defined inline: the replay engine calls
 * them once per trace record, and keeping them visible to machine.cc
 * removes a cross-TU call from the hottest loop in the simulator.
 */

#ifndef CPU_CORE_H
#define CPU_CORE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/config.h"
#include "base/types.h"
#include "core/trace.h"
#include "cpu/breakdown.h"
#include "cpu/gshare.h"

namespace tlsim {

/** Checkpointable timing state of a core (registers of the model). */
struct CoreCheckpoint
{
    Cycle now = 0;
    Breakdown breakdown;
    InstCount instSeq = 0;
    unsigned slotFrac = 0;
};

/** One CPU core's timing engine. */
class Core
{
  public:
    Core(const CpuConfig &cfg, CpuId id);

    CpuId id() const { return id_; }
    Cycle now() const { return now_; }

    /** Jump the clock without attribution (section barriers). */
    void setNow(Cycle t) { now_ = t; }

    /** Advance the clock to `t`, attributing the span to `cat`. */
    void
    advanceTo(Cycle t, Cat cat)
    {
        if (t <= now_)
            return;
        breakdown_[cat] += t - now_;
        now_ = t;
    }

    /** Dynamic instructions dispatched so far (monotonic). */
    InstCount instSeq() const { return instSeq_; }

    Breakdown &breakdown() { return breakdown_; }
    const Breakdown &breakdown() const { return breakdown_; }

    // --- Record execution --------------------------------------------

    /** Execute n instructions of the given class. */
    void
    doCompute(std::uint64_t n, ComputeClass cls)
    {
        unsigned serial_latency = 0;
        switch (cls) {
          case ComputeClass::IntDiv:
            serial_latency = cfg_.intDivLatency;
            break;
          case ComputeClass::FpDiv:
            serial_latency = cfg_.fpDivLatency;
            break;
          case ComputeClass::FpSqrt:
            serial_latency = cfg_.fpSqrtLatency;
            break;
          default:
            break;
        }
        if (serial_latency > 0) {
            // Unpipelined long-latency units: each op serializes.
            retireCompleted();
            advanceTo(now_ + n * serial_latency, Cat::Busy);
            instSeq_ += n;
            return;
        }

        // Pipelined work dispatches at issue width, but cannot run more
        // than a reorder buffer ahead of an incomplete load.
        while (n > 0) {
            retireCompleted();
            std::uint64_t chunk = n;
            if (!loadsEmpty()) {
                InstCount ahead = instSeq_ - loadsFront().seq;
                if (ahead >= cfg_.robSize) {
                    waitOldestLoad();
                    continue;
                }
                chunk = std::min<std::uint64_t>(n, cfg_.robSize - ahead);
            }
            dispatchSlots(chunk);
            n -= chunk;
        }
    }

    /** Execute one branch; applies mispredict penalty. */
    void
    doBranch(Pc pc, bool taken)
    {
        retireCompleted();
        if (!loadsEmpty() && instSeq_ - loadsFront().seq >= cfg_.robSize)
            waitOldestLoad();
        dispatchSlots(1);
        if (!gshare_.predictAndUpdate(pc, taken)) {
            advanceTo(now_ + cfg_.branchPenalty, Cat::Busy);
            slotFrac_ = 0; // fetch redirect loses the partial dispatch group
        }
    }

    /**
     * Resolve structural/data hazards before a load issues. Returns
     * the issue cycle (the clock after any stalls, attributed to
     * Cat::CacheMiss since the stalls come from outstanding misses).
     */
    Cycle
    prepareLoad(bool dependent)
    {
        retireCompleted();
        if (dependent && !loadsEmpty()) {
            // Pointer chase: the address depends on the most recent load.
            advanceTo(loads_[(ldTail_ - 1) & ldMask_].readyAt,
                      Cat::CacheMiss);
            retireCompleted();
        }
        while (loadsSize() >= cfg_.maxOutstandingLoads)
            waitOldestLoad();
        while (!loadsEmpty() && instSeq_ - loadsFront().seq >= cfg_.robSize)
            waitOldestLoad();
        dispatchSlots(1);
        return now_;
    }

    /** Register an issued load's completion time. */
    void
    finishLoad(Cycle ready_at)
    {
        if (ready_at > now_) {
            loads_[ldTail_ & ldMask_] = OutstandingLoad{instSeq_, ready_at};
            ++ldTail_;
        }
    }

    /** Execute a store (buffered write-through; one dispatch slot). */
    void
    doStore(Cycle ready_at)
    {
        retireCompleted();
        if (!loadsEmpty() && instSeq_ - loadsFront().seq >= cfg_.robSize)
            waitOldestLoad();
        dispatchSlots(1);
        // Buffered write-through: the store's own latency is hidden, but
        // never lets the clock run backwards.
        if (ready_at > now_)
            advanceTo(ready_at, Cat::Busy);
    }

    /** Wait until every outstanding load completes (epoch end). */
    void
    drainLoads()
    {
        while (!loadsEmpty())
            waitOldestLoad();
    }

    // --- Checkpoint / rewind ------------------------------------------

    CoreCheckpoint checkpoint() const;

    /**
     * Rewind to `cp`, re-attributing all cycles since it to
     * Cat::Failed and restarting the clock at `restart` (>= the
     * checkpointed clock; the gap is Failed as well — it covers
     * squash delivery). Outstanding loads are discarded.
     */
    void rewindTo(const CoreCheckpoint &cp, Cycle restart);

    /** Drop in-flight state and reset the clock (experiment reset). */
    void reset();

    GShare &gshare() { return gshare_; }
    const GShare &gshare() const { return gshare_; }

    std::uint64_t mispredicts() const { return gshare_.mispredicts(); }

  private:
    struct OutstandingLoad
    {
        InstCount seq;  ///< instSeq_ at dispatch
        Cycle readyAt;
    };

    /** Consume n dispatch slots, advancing the clock (Busy). */
    void
    dispatchSlots(std::uint64_t n)
    {
        std::uint64_t total = slotFrac_ + n;
        Cycle cycles;
        if (issueShift_ >= 0) {
            // issueWidth is a power of two (the common configuration):
            // shift/mask instead of a runtime divide per record.
            cycles = total >> issueShift_;
            slotFrac_ = static_cast<unsigned>(total & issueMask_);
        } else {
            cycles = total / cfg_.issueWidth;
            slotFrac_ = static_cast<unsigned>(total % cfg_.issueWidth);
        }
        advanceTo(now_ + cycles, Cat::Busy);
        instSeq_ += n;
    }

    // The outstanding-load queue is a fixed-capacity ring buffer (its
    // size is bounded by maxOutstandingLoads, enforced in prepareLoad).
    // Head/tail run free as uint32 counters; indices are masked on
    // access, so size is always tail - head with wraparound arithmetic.
    bool loadsEmpty() const { return ldHead_ == ldTail_; }
    std::uint32_t loadsSize() const { return ldTail_ - ldHead_; }
    OutstandingLoad &loadsFront() { return loads_[ldHead_ & ldMask_]; }

    /** Pop loads that completed by now_. */
    void
    retireCompleted()
    {
        while (!loadsEmpty() && loadsFront().readyAt <= now_)
            ++ldHead_;
    }

    /** Stall (Cat::CacheMiss) until the oldest load completes. */
    void
    waitOldestLoad()
    {
        advanceTo(loadsFront().readyAt, Cat::CacheMiss);
        ++ldHead_;
        retireCompleted();
    }

    CpuConfig cfg_;
    CpuId id_;
    GShare gshare_;

    int issueShift_ = -1;        ///< log2(issueWidth), or -1 if not pow2
    unsigned issueMask_ = 0;     ///< issueWidth - 1 when issueShift_ >= 0

    Cycle now_ = 0;
    Breakdown breakdown_;
    InstCount instSeq_ = 0;
    unsigned slotFrac_ = 0; ///< dispatch slots used in the current cycle

    std::vector<OutstandingLoad> loads_; ///< ring storage, pow2 capacity
    std::uint32_t ldMask_ = 0;           ///< capacity - 1
    std::uint32_t ldHead_ = 0;           ///< free-running pop counter
    std::uint32_t ldTail_ = 0;           ///< free-running push counter
};

} // namespace tlsim

#endif // CPU_CORE_H
