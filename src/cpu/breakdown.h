/**
 * @file
 * Cycle attribution categories, matching the stacked bars of the
 * paper's Figure 5: every simulated CPU cycle lands in exactly one
 * category, and on a rewind the cycles of the discarded sub-thread
 * span are re-attributed to Failed.
 */

#ifndef CPU_BREAKDOWN_H
#define CPU_BREAKDOWN_H

#include <array>
#include <cstdint>
#include <string>

#include "base/types.h"

namespace tlsim {

/** Where a CPU cycle went (Figure 5 legend). */
enum class Cat : unsigned {
    Busy = 0,   ///< retiring useful instructions
    CacheMiss,  ///< stalled on the memory hierarchy
    LatchStall, ///< stalled acquiring a latch during escaped speculation
    Sync,       ///< waiting for the homefree token / overflow stalls
    Idle,       ///< no epoch available to run
    Failed,     ///< executed work that a violation later rewound
    NumCats
};

inline constexpr unsigned kNumCats = static_cast<unsigned>(Cat::NumCats);

inline const char *
catName(Cat c)
{
    switch (c) {
      case Cat::Busy: return "busy";
      case Cat::CacheMiss: return "cache_miss";
      case Cat::LatchStall: return "latch_stall";
      case Cat::Sync: return "sync";
      case Cat::Idle: return "idle";
      case Cat::Failed: return "failed";
      default: return "?";
    }
}

/** Per-CPU cycle accounting with snapshot/rollback for sub-threads. */
struct Breakdown
{
    std::array<std::uint64_t, kNumCats> cycles{};

    std::uint64_t &operator[](Cat c)
    {
        return cycles[static_cast<unsigned>(c)];
    }

    std::uint64_t operator[](Cat c) const
    {
        return cycles[static_cast<unsigned>(c)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto v : cycles)
            t += v;
        return t;
    }

    Breakdown &
    operator+=(const Breakdown &o)
    {
        for (unsigned i = 0; i < kNumCats; ++i)
            cycles[i] += o.cycles[i];
        return *this;
    }

    /**
     * Rewind support: everything accumulated since `snap` becomes
     * Failed work (the wall-clock span is preserved).
     */
    void
    failSince(const Breakdown &snap)
    {
        std::uint64_t span = 0;
        for (unsigned i = 0; i < kNumCats; ++i) {
            span += cycles[i] - snap.cycles[i];
            cycles[i] = snap.cycles[i];
        }
        (*this)[Cat::Failed] += span;
    }
};

} // namespace tlsim

#endif // CPU_BREAKDOWN_H
