/**
 * @file
 * Reproduces Figure 6 of the paper: performance of the five
 * loop-parallelized benchmarks while varying the number of sub-thread
 * contexts per thread (2, 4, 8) and the spacing between sub-thread
 * start points (speculative instructions per sub-thread).
 *
 * The BASELINE point is 8 sub-threads at 5,000 instructions. Shape
 * targets from the paper's Section 5.1: more sub-threads never hurt
 * (the extra contexts either widen coverage or increase checkpoint
 * density), very large sub-threads forfeit the benefit, and
 * DELIVERY OUTER shows the early-dependence re-timing effect that
 * small sub-threads unlock.
 *
 * With --prune=oracle the critical-path analyzer (core/critpath)
 * scores every grid point analytically from one dependence graph per
 * benchmark, and only the predicted frontier is simulated: the
 * BASELINE (which also calibrates the analyzer's scale), the
 * predicted-best spacing per sub-thread count, and the large-spacing
 * edge per count. Pruned points report the calibrated predicted
 * makespan ("simulated": 0 in the JSON rows); the "critpath" report
 * block carries the observed band error and the pruning ratio (at
 * least 2x fewer timing simulations, enforced by
 * tools/check_bench_json.py).
 *
 * With --placement=risk both the simulated machine and the analyzer
 * place sub-thread start points at predicted exposed-load risk
 * records instead of fixed spacing (TlsConfig::riskPlacement).
 *
 * All (benchmark x {sequential reference, sweep point}) simulation
 * points fan out across --jobs workers after a serial capture phase;
 * results fill index-assigned slots, so the report is bit-identical
 * for any job count.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "base/log.h"
#include "bench/benchutil.h"
#include "core/critpath/analyzer.h"
#include "core/resulthash.h"
#include "core/critpath/graph.h"
#include "sim/report.h"

using namespace tlsim;

int
main(int argc, char **argv)
{
    bench::BenchSession session("bench_figure6_sweep", argc, argv);
    bench::BenchArgs &args = session.args;
    sim::SimExecutor &ex = session.ex;
    bench::BenchReport &report = session.report;

    const std::vector<unsigned> counts = {2, 4, 8};
    const std::vector<std::uint64_t> spacings = {1000,  2500,  5000,
                                                 10000, 25000, 50000};
    const std::size_t grid = counts.size() * spacings.size();
    const bool oracle = args.prune == "oracle";
    const critpath::Placement placement =
        args.placement == "risk" ? critpath::Placement::Risk
                                 : critpath::Placement::Fixed;
    // The calibration/frontier anchor: BASELINE = 8 x 5000.
    const std::size_t base_pt = 2 * spacings.size() + 2;

    const std::vector<tpcc::TxnType> sweep_benchmarks = {
        tpcc::TxnType::NewOrder, tpcc::TxnType::NewOrder150,
        tpcc::TxnType::Delivery, tpcc::TxnType::DeliveryOuter,
        tpcc::TxnType::StockLevel,
    };

    // Serial capture phase.
    std::vector<sim::ExperimentConfig> cfgs;
    std::vector<sim::SharedTraces> traces;
    for (tpcc::TxnType type : sweep_benchmarks) {
        std::fprintf(stderr, "capturing %s...\n",
                     tpcc::txnTypeName(type));
        cfgs.push_back(bench::configFor(type, args));
        traces.push_back(bench::capture(type, cfgs.back(), args));
    }
    if (report.probe().enabled()) {
        std::vector<std::uint64_t> caps;
        for (const sim::SharedTraces &t : traces) {
            det::Hash h;
            h.u64(det::hashWorkloadTrace(t->original));
            h.u64(det::hashWorkloadTrace(t->tls));
            caps.push_back(h.value());
        }
        report.probe().stageItems("capture", caps);
    }

    // Oracle phase: one dependence graph per benchmark scores the
    // whole grid analytically; the frontier keeps the BASELINE, the
    // predicted-best spacing per count, and the large-spacing edge
    // per count (the paper's "very large sub-threads forfeit the
    // benefit" endpoint), so the published shape is still anchored by
    // real simulations at its extremes.
    std::vector<std::vector<critpath::Prediction>> preds(
        sweep_benchmarks.size());
    std::vector<std::vector<char>> simulate(sweep_benchmarks.size());
    for (std::size_t b = 0; b < sweep_benchmarks.size(); ++b)
        simulate[b].assign(grid, 1);
    if (oracle) {
        for (std::size_t b = 0; b < sweep_benchmarks.size(); ++b) {
            critpath::DepGraph g(traces[b]->tls, *traces[b]->tlsIndex,
                                 cfgs[b].machine);
            critpath::Analyzer an(g);
            preds[b].resize(grid);
            for (std::size_t j = 0; j < grid; ++j) {
                critpath::AnalyzerConfig ac;
                ac.subthreads = counts[j / spacings.size()];
                ac.spacing = spacings[j % spacings.size()];
                ac.placement = placement;
                ac.warmupTxns = cfgs[b].warmupTxns;
                preds[b][j] = an.predict(ac);
            }
            simulate[b].assign(grid, 0);
            simulate[b][base_pt] = 1;
            for (std::size_t ci = 0; ci < counts.size(); ++ci) {
                std::size_t best = ci * spacings.size();
                for (std::size_t si = 1; si < spacings.size(); ++si) {
                    const std::size_t j = ci * spacings.size() + si;
                    if (preds[b][j].makespan <
                        preds[b][best].makespan)
                        best = j;
                }
                simulate[b][best] = 1;
                simulate[b][(ci + 1) * spacings.size() - 1] = 1;
            }
        }
    }

    // Parallel phase: per benchmark, the SEQUENTIAL reference plus
    // the (possibly pruned) counts x spacings sweep points.
    const std::size_t per_bench = 1 + grid;
    std::vector<RunResult> seqs(sweep_benchmarks.size());
    std::vector<std::vector<sim::SweepPoint>> points(
        sweep_benchmarks.size());
    for (auto &p : points)
        p.resize(grid);

    // The captures above built exactly one pre-analysis per trace;
    // every sweep point (and the oracle's dependence graphs) must
    // reuse those, so no run in the parallel phase may trigger
    // another analysis pass.
    const std::uint64_t builds_before = TraceIndex::builds();

    ex.parallelFor(sweep_benchmarks.size() * per_bench,
                   [&](std::size_t i) {
        std::size_t b = i / per_bench;
        std::size_t j = i % per_bench;
        if (j == 0) {
            seqs[b] = sim::runBar(sim::Bar::Sequential, *traces[b],
                                  cfgs[b]);
            return;
        }
        --j;
        unsigned k = counts[j / spacings.size()];
        std::uint64_t s = spacings[j % spacings.size()];
        points[b][j].subthreads = k;
        points[b][j].spacing = s;
        if (!simulate[b][j])
            return; // pruned: filled from the prediction below
        MachineConfig mc = cfgs[b].machine;
        mc.tls.subthreadsPerThread = k;
        mc.tls.subthreadSpacing = s;
        TlsMachine m(mc);
        points[b][j].run = m.run(traces[b]->tls, ExecMode::Tls,
                                 cfgs[b].warmupTxns,
                                 traces[b]->tlsIndex.get());
    });

    const std::uint64_t sweep_builds =
        TraceIndex::builds() - builds_before;
    if (sweep_builds != 0)
        fatal("trace pre-analysis ran %llu times during the sweep; "
              "each capture's index must be shared across all points",
              static_cast<unsigned long long>(sweep_builds));
    report.add("index_builds/sweep-phase",
               {{"builds", static_cast<double>(sweep_builds)}});

    // Replay digests are taken before the oracle fills pruned points
    // with predictions: only genuinely simulated results count.
    if (report.probe().enabled()) {
        std::vector<std::uint64_t> digests;
        for (std::size_t b = 0; b < sweep_benchmarks.size(); ++b) {
            digests.push_back(det::hashRunResult(seqs[b]));
            for (std::size_t j = 0; j < grid; ++j)
                if (simulate[b][j])
                    digests.push_back(
                        det::hashRunResult(points[b][j].run));
        }
        report.probe().stageItems("replay", digests);
    }

    // Calibrate the analyzer per benchmark on the BASELINE point and
    // fill the pruned points with the calibrated prediction; the band
    // error is the worst disagreement on frontier points that were
    // both predicted and simulated (the BASELINE itself matches by
    // construction).
    double cp_predicted = 0;
    double cp_band = 0;
    std::size_t cp_simulated = 0;
    if (oracle) {
        for (std::size_t b = 0; b < sweep_benchmarks.size(); ++b) {
            const double calib =
                static_cast<double>(points[b][base_pt].run.makespan) /
                static_cast<double>(preds[b][base_pt].makespan);
            for (std::size_t j = 0; j < grid; ++j) {
                const double est =
                    calib *
                    static_cast<double>(preds[b][j].makespan);
                cp_predicted += est;
                if (!simulate[b][j]) {
                    points[b][j].run.makespan =
                        static_cast<Cycle>(std::llround(est));
                    continue;
                }
                ++cp_simulated;
                const double sim_ms =
                    static_cast<double>(points[b][j].run.makespan);
                if (j != base_pt && sim_ms > 0)
                    cp_band = std::max(
                        cp_band, std::abs(est - sim_ms) / sim_ms);
            }
        }
        report.setCritpath(
            cp_predicted, cp_band,
            static_cast<double>(grid * sweep_benchmarks.size()),
            static_cast<double>(cp_simulated));
        std::printf("oracle pruning: simulated %zu of %zu grid points "
                    "(band error %.1f%%, placement %s)\n\n",
                    cp_simulated, grid * sweep_benchmarks.size(),
                    cp_band * 100.0,
                    critpath::placementName(placement));
    }

    for (std::size_t b = 0; b < sweep_benchmarks.size(); ++b) {
        const char *name = tpcc::txnTypeName(sweep_benchmarks[b]);
        sim::printFigure6(std::cout, name, points[b],
                          seqs[b].makespan);
        report.addSimulatedCycles(
            static_cast<double>(seqs[b].makespan));
        report.addReplayRecords(
            static_cast<double>(seqs[b].recordsReplayed));
        report.addAuditChecks(
            static_cast<double>(seqs[b].auditChecks));
        report.add(std::string(name) + "/SEQUENTIAL",
                   {{"makespan",
                     static_cast<double>(seqs[b].makespan)}});
        for (std::size_t j = 0; j < grid; ++j) {
            const auto &p = points[b][j];
            const bool simulated = simulate[b][j] != 0;
            if (simulated) {
                report.addSimulatedCycles(
                    static_cast<double>(p.run.makespan));
                report.addReplayRecords(
                    static_cast<double>(p.run.recordsReplayed));
                report.addAuditChecks(
                    static_cast<double>(p.run.auditChecks));
            }
            bench::BenchReport::Fields fields = {
                {"makespan", static_cast<double>(p.run.makespan)},
                {"speedup", p.run.makespan
                                ? static_cast<double>(seqs[b].makespan) /
                                      static_cast<double>(p.run.makespan)
                                : 0.0}};
            if (oracle)
                fields.emplace_back("simulated", simulated ? 1.0 : 0.0);
            report.add(
                strfmt("%s/k%u/s%llu", name, p.subthreads,
                       static_cast<unsigned long long>(p.spacing)),
                std::move(fields));
        }
    }
    if (report.probe().enabled()) {
        std::vector<std::uint64_t> agg;
        for (std::size_t b = 0; b < sweep_benchmarks.size(); ++b) {
            det::Hash h;
            h.str(tpcc::txnTypeName(sweep_benchmarks[b]));
            h.u64(seqs[b].makespan);
            for (std::size_t j = 0; j < grid; ++j) {
                h.u64(points[b][j].subthreads);
                h.u64(points[b][j].spacing);
                h.u64(points[b][j].run.makespan);
            }
            agg.push_back(h.value());
        }
        report.probe().stageItems("aggregate", agg);
    }
    return session.finish();
}
