/**
 * @file
 * Reproduces Figure 6 of the paper: performance of the five
 * loop-parallelized benchmarks while varying the number of sub-thread
 * contexts per thread (2, 4, 8) and the spacing between sub-thread
 * start points (speculative instructions per sub-thread).
 *
 * The BASELINE point is 8 sub-threads at 5,000 instructions. Shape
 * targets from the paper's Section 5.1: more sub-threads never hurt
 * (the extra contexts either widen coverage or increase checkpoint
 * density), very large sub-threads forfeit the benefit, and
 * DELIVERY OUTER shows the early-dependence re-timing effect that
 * small sub-threads unlock.
 */

#include <cstdio>
#include <iostream>

#include "base/log.h"
#include "bench/benchutil.h"
#include "sim/report.h"

using namespace tlsim;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    setInformEnabled(false);

    const std::vector<unsigned> counts = {2, 4, 8};
    const std::vector<std::uint64_t> spacings = {1000,  2500,  5000,
                                                 10000, 25000, 50000};

    const tpcc::TxnType sweep_benchmarks[] = {
        tpcc::TxnType::NewOrder, tpcc::TxnType::NewOrder150,
        tpcc::TxnType::Delivery, tpcc::TxnType::DeliveryOuter,
        tpcc::TxnType::StockLevel,
    };

    for (tpcc::TxnType type : sweep_benchmarks) {
        std::fprintf(stderr, "sweeping %s...\n",
                     tpcc::txnTypeName(type));
        sim::ExperimentConfig cfg = bench::configFor(type, args);

        // The SEQUENTIAL reference for normalization.
        sim::BenchmarkTraces traces = sim::captureTraces(type, cfg);
        RunResult seq =
            sim::runBar(sim::Bar::Sequential, traces, cfg);

        std::vector<sim::SweepPoint> points;
        for (unsigned k : counts) {
            for (std::uint64_t s : spacings) {
                MachineConfig mc = cfg.machine;
                mc.tls.subthreadsPerThread = k;
                mc.tls.subthreadSpacing = s;
                TlsMachine m(mc);
                points.push_back(
                    {k, s,
                     m.run(traces.tls, ExecMode::Tls,
                           cfg.warmupTxns)});
            }
        }
        sim::printFigure6(std::cout, tpcc::txnTypeName(type), points,
                          seq.makespan);
    }
    return 0;
}
