/**
 * @file
 * Reproduces Figure 6 of the paper: performance of the five
 * loop-parallelized benchmarks while varying the number of sub-thread
 * contexts per thread (2, 4, 8) and the spacing between sub-thread
 * start points (speculative instructions per sub-thread).
 *
 * The BASELINE point is 8 sub-threads at 5,000 instructions. Shape
 * targets from the paper's Section 5.1: more sub-threads never hurt
 * (the extra contexts either widen coverage or increase checkpoint
 * density), very large sub-threads forfeit the benefit, and
 * DELIVERY OUTER shows the early-dependence re-timing effect that
 * small sub-threads unlock.
 *
 * All (benchmark x {sequential reference, sweep point}) simulation
 * points fan out across --jobs workers after a serial capture phase;
 * results fill index-assigned slots, so the report is bit-identical
 * for any job count.
 */

#include <cstdio>
#include <iostream>

#include "base/log.h"
#include "bench/benchutil.h"
#include "sim/report.h"

using namespace tlsim;

int
main(int argc, char **argv)
{
    bench::BenchSession session("bench_figure6_sweep", argc, argv);
    bench::BenchArgs &args = session.args;
    sim::SimExecutor &ex = session.ex;
    bench::BenchReport &report = session.report;

    const std::vector<unsigned> counts = {2, 4, 8};
    const std::vector<std::uint64_t> spacings = {1000,  2500,  5000,
                                                 10000, 25000, 50000};

    const std::vector<tpcc::TxnType> sweep_benchmarks = {
        tpcc::TxnType::NewOrder, tpcc::TxnType::NewOrder150,
        tpcc::TxnType::Delivery, tpcc::TxnType::DeliveryOuter,
        tpcc::TxnType::StockLevel,
    };

    // Serial capture phase.
    std::vector<sim::ExperimentConfig> cfgs;
    std::vector<sim::SharedTraces> traces;
    for (tpcc::TxnType type : sweep_benchmarks) {
        std::fprintf(stderr, "capturing %s...\n",
                     tpcc::txnTypeName(type));
        cfgs.push_back(bench::configFor(type, args));
        traces.push_back(bench::capture(type, cfgs.back(), args));
    }

    // Parallel phase: per benchmark, the SEQUENTIAL reference plus
    // counts x spacings sweep points.
    const std::size_t per_bench = 1 + counts.size() * spacings.size();
    std::vector<RunResult> seqs(sweep_benchmarks.size());
    std::vector<std::vector<sim::SweepPoint>> points(
        sweep_benchmarks.size());
    for (auto &p : points)
        p.resize(counts.size() * spacings.size());

    // The captures above built exactly one pre-analysis per trace;
    // every sweep point must reuse those, so no run in the parallel
    // phase may trigger another analysis pass.
    const std::uint64_t builds_before = TraceIndex::builds();

    ex.parallelFor(sweep_benchmarks.size() * per_bench,
                   [&](std::size_t i) {
        std::size_t b = i / per_bench;
        std::size_t j = i % per_bench;
        if (j == 0) {
            seqs[b] = sim::runBar(sim::Bar::Sequential, *traces[b],
                                  cfgs[b]);
            return;
        }
        --j;
        unsigned k = counts[j / spacings.size()];
        std::uint64_t s = spacings[j % spacings.size()];
        MachineConfig mc = cfgs[b].machine;
        mc.tls.subthreadsPerThread = k;
        mc.tls.subthreadSpacing = s;
        TlsMachine m(mc);
        points[b][j] = {k, s,
                        m.run(traces[b]->tls, ExecMode::Tls,
                              cfgs[b].warmupTxns,
                              traces[b]->tlsIndex.get())};
    });

    const std::uint64_t sweep_builds =
        TraceIndex::builds() - builds_before;
    if (sweep_builds != 0)
        fatal("trace pre-analysis ran %llu times during the sweep; "
              "each capture's index must be shared across all points",
              static_cast<unsigned long long>(sweep_builds));
    report.add("index_builds/sweep-phase",
               {{"builds", static_cast<double>(sweep_builds)}});

    for (std::size_t b = 0; b < sweep_benchmarks.size(); ++b) {
        const char *name = tpcc::txnTypeName(sweep_benchmarks[b]);
        sim::printFigure6(std::cout, name, points[b],
                          seqs[b].makespan);
        report.addSimulatedCycles(
            static_cast<double>(seqs[b].makespan));
        report.addReplayRecords(
            static_cast<double>(seqs[b].recordsReplayed));
        report.addAuditChecks(
            static_cast<double>(seqs[b].auditChecks));
        report.add(std::string(name) + "/SEQUENTIAL",
                   {{"makespan",
                     static_cast<double>(seqs[b].makespan)}});
        for (const auto &p : points[b]) {
            report.addSimulatedCycles(
                static_cast<double>(p.run.makespan));
            report.addReplayRecords(
                static_cast<double>(p.run.recordsReplayed));
            report.addAuditChecks(
                static_cast<double>(p.run.auditChecks));
            report.add(
                strfmt("%s/k%u/s%llu", name, p.subthreads,
                       static_cast<unsigned long long>(p.spacing)),
                {{"makespan", static_cast<double>(p.run.makespan)},
                 {"speedup", p.run.speedupVs(seqs[b])}});
        }
    }
    return session.finish();
}
