/**
 * @file
 * Design-choice ablations on the real NEW ORDER workload (DESIGN.md
 * §6), each tied to a claim in the paper:
 *
 *  - aggressive update propagation (write-through L1 + immediate
 *    violation checks) vs lazy commit-time propagation — Section 2.1
 *    motivates the write-through design by reduced violations;
 *  - L1 sub-thread awareness — Section 2.2: "we have found this
 *    support to be not worthwhile" (we model its best case: no L1
 *    flush on a violation at all);
 *  - speculative victim cache sizing — Section 2.1 footnote: 64
 *    entries cover the worst case, "a smaller victim cache would
 *    likely be sufficient for the common case";
 *  - CPU scaling — the paper's CMP is 4-way; the mechanism is not
 *    limited to it;
 *  - violation delivery latency sensitivity.
 */

#include <cstdio>

#include "base/log.h"
#include "bench/benchutil.h"
#include "sim/experiment.h"

using namespace tlsim;

namespace {

void
line(const char *label, const RunResult &r, Cycle seq)
{
    std::printf("  %-38s speedup %5.2f  violations %5llu  failed "
                "%9llu  overflow %llu\n",
                label,
                r.makespan ? static_cast<double>(seq) /
                                 static_cast<double>(r.makespan)
                           : 0.0,
                static_cast<unsigned long long>(r.primaryViolations +
                                                r.secondaryViolations),
                static_cast<unsigned long long>(r.total[Cat::Failed]),
                static_cast<unsigned long long>(r.overflowEvents));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    setInformEnabled(false);

    sim::ExperimentConfig cfg =
        bench::configFor(tpcc::TxnType::NewOrder, args);
    std::fprintf(stderr, "capturing NEW ORDER...\n");
    sim::BenchmarkTraces traces =
        sim::captureTraces(tpcc::TxnType::NewOrder, cfg);
    Cycle seq = sim::runBar(sim::Bar::Sequential, traces, cfg).makespan;

    auto run = [&](MachineConfig mc) {
        TlsMachine m(mc);
        return m.run(traces.tls, ExecMode::Tls, cfg.warmupTxns);
    };

    std::printf("=== Ablation: update propagation (Section 2.1) ===\n");
    {
        MachineConfig lazy = cfg.machine;
        lazy.tls.aggressiveUpdates = false;
        line("aggressive (write-through, baseline)", run(cfg.machine),
             seq);
        line("lazy (checks deferred to commit)", run(lazy), seq);
    }

    std::printf("\n=== Ablation: L1 sub-thread awareness (Section 2.2) "
                "===\n");
    {
        MachineConfig aware = cfg.machine;
        aware.tls.l1SubthreadAware = true;
        line("L1 unaware (flush on violation)", run(cfg.machine), seq);
        line("L1 sub-thread aware (best case)", run(aware), seq);
    }

    std::printf("\n=== Ablation: victim cache size ===\n");
    for (unsigned entries : {0u, 4u, 16u, 64u, 256u}) {
        MachineConfig mc = cfg.machine;
        mc.mem.victimEntries = entries;
        mc.tls.useVictimCache = entries > 0;
        line(strfmt("%u entries", entries).c_str(), run(mc), seq);
    }

    std::printf("\n=== Ablation: CPU count ===\n");
    for (unsigned cpus : {2u, 4u, 8u}) {
        MachineConfig mc = cfg.machine;
        mc.tls.numCpus = cpus;
        // Sequential reference uses the same idle-CPU accounting.
        TlsMachine m(mc);
        RunResult s = m.run(traces.original, ExecMode::Serial,
                            cfg.warmupTxns);
        RunResult t = m.run(traces.tls, ExecMode::Tls, cfg.warmupTxns);
        line(strfmt("%u CPUs", cpus).c_str(), t, s.makespan);
    }

    std::printf("\n=== Ablation: violation delivery latency ===\n");
    for (unsigned lat : {0u, 10u, 50u, 200u}) {
        MachineConfig mc = cfg.machine;
        mc.tls.violationDeliveryLatency = lat;
        line(strfmt("%u cycles", lat).c_str(), run(mc), seq);
    }

    std::printf("\n=== Ablation: PC-indexed dependence predictor "
                "(Section 1.2) ===\n");
    {
        MachineConfig pred = cfg.machine;
        pred.tls.useDependencePredictor = true;
        RunResult rs = run(cfg.machine);
        RunResult rp = run(pred);
        line("sub-threads (no predictor)", rs, seq);
        line("predictor synchronizes hot PCs", rp, seq);
        std::printf("  (predictor stalled %llu loads: only some "
                    "dynamic instances of a load PC are truly "
                    "dependent, so it over-synchronizes)\n",
                    static_cast<unsigned long long>(
                        rp.predictorStalls));
    }

    // The paper's Section 1 narrative as a 2x2 matrix: the untuned
    // database sees "no speedup on a conventional all-or-nothing TLS
    // architecture", and sub-threads + tuning together unlock the
    // full gain.
    std::printf("\n=== Software tuning x sub-thread support "
                "(Section 1) ===\n");
    {
        tpcc::CaptureOptions uopts;
        uopts.scale = cfg.scale;
        uopts.txns = cfg.txns;
        uopts.tlsBuild = false;
        uopts.parallelMode = true; // naive parallelization attempt
        WorkloadTrace untuned =
            tpcc::captureBenchmark(tpcc::TxnType::NewOrder, uopts);

        for (bool tuned : {false, true}) {
            const WorkloadTrace &w = tuned ? traces.tls : untuned;
            for (unsigned k : {1u, 8u}) {
                MachineConfig mc = cfg.machine;
                mc.tls.subthreadsPerThread = k;
                TlsMachine m(mc);
                RunResult r = m.run(w, ExecMode::Tls, cfg.warmupTxns);
                line(strfmt("%s DB, %s", tuned ? "tuned" : "untuned",
                            k == 1 ? "all-or-nothing" : "8 sub-threads")
                         .c_str(),
                     r, seq);
            }
        }
    }
    return 0;
}
