/**
 * @file
 * Design-choice ablations on the real NEW ORDER workload (DESIGN.md
 * §6), each tied to a claim in the paper:
 *
 *  - aggressive update propagation (write-through L1 + immediate
 *    violation checks) vs lazy commit-time propagation — Section 2.1
 *    motivates the write-through design by reduced violations;
 *  - L1 sub-thread awareness — Section 2.2: "we have found this
 *    support to be not worthwhile" (we model its best case: no L1
 *    flush on a violation at all);
 *  - speculative victim cache sizing — Section 2.1 footnote: 64
 *    entries cover the worst case, "a smaller victim cache would
 *    likely be sufficient for the common case";
 *  - CPU scaling — the paper's CMP is 4-way; the mechanism is not
 *    limited to it;
 *  - violation delivery latency sensitivity.
 *
 * Every machine run is registered as a job up front and fanned out
 * across --jobs workers; sections print in order afterwards, so the
 * report is bit-identical for any job count.
 */

#include <cstdio>
#include <vector>

#include "base/log.h"
#include "bench/benchutil.h"
#include "core/resulthash.h"
#include "sim/experiment.h"

using namespace tlsim;

namespace {

bench::BenchReport *g_report = nullptr;

void
line(const std::string &label, const RunResult &r, Cycle seq)
{
    std::printf("  %-38s speedup %5.2f  violations %5llu  failed "
                "%9llu  overflow %llu\n",
                label.c_str(),
                r.makespan ? static_cast<double>(seq) /
                                 static_cast<double>(r.makespan)
                           : 0.0,
                static_cast<unsigned long long>(r.primaryViolations +
                                                r.secondaryViolations),
                static_cast<unsigned long long>(r.total[Cat::Failed]),
                static_cast<unsigned long long>(r.overflowEvents));
    if (g_report) {
        g_report->addSimulatedCycles(static_cast<double>(r.makespan));
        g_report->addReplayRecords(
            static_cast<double>(r.recordsReplayed));
        g_report->addAuditChecks(static_cast<double>(r.auditChecks));
        g_report->add(
            label,
            {{"makespan", static_cast<double>(r.makespan)},
             {"speedup", r.makespan
                             ? static_cast<double>(seq) /
                                   static_cast<double>(r.makespan)
                             : 0.0},
             {"violations",
              static_cast<double>(r.primaryViolations +
                                  r.secondaryViolations)},
             {"failed_cycles",
              static_cast<double>(r.total[Cat::Failed])},
             {"overflows", static_cast<double>(r.overflowEvents)}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchSession session("bench_ablations", argc, argv);
    bench::BenchArgs &args = session.args;
    sim::SimExecutor &ex = session.ex;
    bench::BenchReport &report = session.report;
    g_report = &report;

    sim::ExperimentConfig cfg =
        bench::configFor(tpcc::TxnType::NewOrder, args);
    std::fprintf(stderr, "capturing NEW ORDER...\n");
    sim::SharedTraces traces =
        bench::capture(tpcc::TxnType::NewOrder, cfg, args);

    // The Section 1 narrative also needs a naively-parallelized
    // capture of the *untuned* database (never cached: it is specific
    // to this ablation). Captures stay serial and up front.
    tpcc::CaptureOptions uopts;
    uopts.scale = cfg.scale;
    uopts.txns = cfg.txns;
    uopts.tlsBuild = false;
    uopts.parallelMode = true; // naive parallelization attempt
    WorkloadTrace untuned =
        tpcc::captureBenchmark(tpcc::TxnType::NewOrder, uopts);

    // ----- job registration (results land by index) -------------------
    struct Job
    {
        const WorkloadTrace *w;
        MachineConfig mc;
        ExecMode mode;
        const TraceIndex *idx = nullptr;
    };
    std::vector<Job> jobs;
    auto add = [&](const WorkloadTrace &w, MachineConfig mc,
                   ExecMode mode = ExecMode::Tls,
                   const TraceIndex *idx = nullptr) {
        jobs.push_back({&w, mc, mode, idx});
        return jobs.size() - 1;
    };
    auto tls = [&](MachineConfig mc) {
        return add(traces->tls, mc);
    };

    std::size_t j_seq = add(traces->original, cfg.machine,
                            ExecMode::Serial);

    std::size_t j_aggr = tls(cfg.machine);
    MachineConfig lazy_mc = cfg.machine;
    lazy_mc.tls.aggressiveUpdates = false;
    std::size_t j_lazy = tls(lazy_mc);

    MachineConfig aware_mc = cfg.machine;
    aware_mc.tls.l1SubthreadAware = true;
    std::size_t j_unaware = tls(cfg.machine);
    std::size_t j_aware = tls(aware_mc);

    const unsigned victim_sizes[] = {0, 4, 16, 64, 256};
    std::size_t j_victim[5];
    for (std::size_t i = 0; i < 5; ++i) {
        MachineConfig mc = cfg.machine;
        mc.mem.victimEntries = victim_sizes[i];
        mc.tls.useVictimCache = victim_sizes[i] > 0;
        j_victim[i] = tls(mc);
    }

    const unsigned cpu_counts[] = {2, 4, 8};
    std::size_t j_cpu_seq[3], j_cpu_tls[3];
    for (std::size_t i = 0; i < 3; ++i) {
        MachineConfig mc = cfg.machine;
        mc.tls.numCpus = cpu_counts[i];
        // Sequential reference uses the same idle-CPU accounting.
        j_cpu_seq[i] = add(traces->original, mc, ExecMode::Serial);
        j_cpu_tls[i] = tls(mc);
    }

    const unsigned latencies[] = {0, 10, 50, 200};
    std::size_t j_lat[4];
    for (std::size_t i = 0; i < 4; ++i) {
        MachineConfig mc = cfg.machine;
        mc.tls.violationDeliveryLatency = latencies[i];
        j_lat[i] = tls(mc);
    }

    MachineConfig pred_mc = cfg.machine;
    pred_mc.tls.useDependencePredictor = true;
    std::size_t j_nopred = tls(cfg.machine);
    std::size_t j_pred = tls(pred_mc);

    // Sub-thread start-point placement: fixed spacing vs predicted
    // exposed-load risk records (core/critpath/placement.h; the same
    // selection the --placement=risk sweeps use). Run per benchmark:
    // whether risk records cluster (DELIVERY's btree walks) or spread
    // evenly (NEW ORDER) decides which policy wins, so a single
    // transaction type would over- or under-sell the mechanism.
    const tpcc::TxnType place_txns[] = {
        tpcc::TxnType::NewOrder, tpcc::TxnType::NewOrder150,
        tpcc::TxnType::Delivery, tpcc::TxnType::DeliveryOuter,
        tpcc::TxnType::StockLevel,
    };
    constexpr std::size_t kPlaceBench =
        sizeof(place_txns) / sizeof(place_txns[0]);
    sim::SharedTraces place_traces[kPlaceBench];
    std::size_t j_place_fixed[kPlaceBench], j_place_risk[kPlaceBench];
    std::size_t j_place_seq[kPlaceBench];
    for (std::size_t i = 0; i < kPlaceBench; ++i) {
        place_traces[i] =
            i == 0 ? traces
                   : bench::capture(place_txns[i],
                                    bench::configFor(place_txns[i], args),
                                    args);
        MachineConfig fixed_mc = cfg.machine;
        fixed_mc.tls.riskPlacement = false;
        MachineConfig risk_mc = cfg.machine;
        risk_mc.tls.riskPlacement = true;
        const TraceIndex *idx = place_traces[i]->tlsIndex.get();
        j_place_fixed[i] = add(place_traces[i]->tls, fixed_mc,
                               ExecMode::Tls, idx);
        j_place_risk[i] = add(place_traces[i]->tls, risk_mc,
                              ExecMode::Tls, idx);
        j_place_seq[i] =
            i == 0 ? j_seq
                   : add(place_traces[i]->original, cfg.machine,
                         ExecMode::Serial,
                         place_traces[i]->originalIndex.get());
    }

    // Software tuning x sub-thread support (2x2 matrix).
    std::size_t j_matrix[2][2];
    for (int tuned = 0; tuned < 2; ++tuned) {
        const WorkloadTrace &w = tuned ? traces->tls : untuned;
        for (int sub = 0; sub < 2; ++sub) {
            MachineConfig mc = cfg.machine;
            mc.tls.subthreadsPerThread = sub ? 8 : 1;
            j_matrix[tuned][sub] = add(w, mc);
        }
    }

    if (report.probe().enabled()) {
        std::vector<std::uint64_t> caps;
        {
            det::Hash h;
            h.u64(det::hashWorkloadTrace(traces->original));
            h.u64(det::hashWorkloadTrace(traces->tls));
            caps.push_back(h.value());
        }
        caps.push_back(det::hashWorkloadTrace(untuned));
        for (std::size_t i = 1; i < kPlaceBench; ++i) {
            det::Hash h;
            h.u64(det::hashWorkloadTrace(place_traces[i]->original));
            h.u64(det::hashWorkloadTrace(place_traces[i]->tls));
            caps.push_back(h.value());
        }
        report.probe().stageItems("capture", caps);
    }

    // ----- parallel execution ----------------------------------------
    std::vector<RunResult> res(jobs.size());
    ex.parallelFor(jobs.size(), [&](std::size_t i) {
        TlsMachine m(jobs[i].mc);
        const TraceIndex *idx = jobs[i].idx;
        if (!idx && jobs[i].w == &traces->original)
            idx = traces->originalIndex.get();
        else if (!idx && jobs[i].w == &traces->tls)
            idx = traces->tlsIndex.get();
        res[i] = m.run(*jobs[i].w, jobs[i].mode, cfg.warmupTxns, idx);
    });

    if (report.probe().enabled()) {
        std::vector<std::uint64_t> digests;
        for (const RunResult &r : res)
            digests.push_back(det::hashRunResult(r));
        report.probe().stageItems("replay", digests);
    }

    Cycle seq = res[j_seq].makespan;

    // ----- report (original section order) ---------------------------
    std::printf("=== Ablation: update propagation (Section 2.1) ===\n");
    line("aggressive (write-through, baseline)", res[j_aggr], seq);
    line("lazy (checks deferred to commit)", res[j_lazy], seq);

    std::printf("\n=== Ablation: L1 sub-thread awareness (Section 2.2) "
                "===\n");
    line("L1 unaware (flush on violation)", res[j_unaware], seq);
    line("L1 sub-thread aware (best case)", res[j_aware], seq);

    std::printf("\n=== Ablation: victim cache size ===\n");
    for (std::size_t i = 0; i < 5; ++i)
        line(strfmt("%u entries", victim_sizes[i]), res[j_victim[i]],
             seq);

    std::printf("\n=== Ablation: CPU count ===\n");
    for (std::size_t i = 0; i < 3; ++i)
        line(strfmt("%u CPUs", cpu_counts[i]), res[j_cpu_tls[i]],
             res[j_cpu_seq[i]].makespan);

    std::printf("\n=== Ablation: violation delivery latency ===\n");
    for (std::size_t i = 0; i < 4; ++i)
        line(strfmt("%u cycles", latencies[i]), res[j_lat[i]], seq);

    std::printf("\n=== Ablation: PC-indexed dependence predictor "
                "(Section 1.2) ===\n");
    line("sub-threads (no predictor)", res[j_nopred], seq);
    line("predictor synchronizes hot PCs", res[j_pred], seq);
    std::printf("  (predictor stalled %llu loads: only some "
                "dynamic instances of a load PC are truly "
                "dependent, so it over-synchronizes)\n",
                static_cast<unsigned long long>(
                    res[j_pred].predictorStalls));

    std::printf("\n=== Ablation: sub-thread start-point placement "
                "===\n");
    for (std::size_t i = 0; i < kPlaceBench; ++i) {
        const char *nm = tpcc::txnTypeName(place_txns[i]);
        Cycle bench_seq = res[j_place_seq[i]].makespan;
        line(strfmt("%s, fixed spacing", nm), res[j_place_fixed[i]],
             bench_seq);
        line(strfmt("%s, predicted-risk", nm), res[j_place_risk[i]],
             bench_seq);
    }

    // The paper's Section 1 narrative as a 2x2 matrix: the untuned
    // database sees "no speedup on a conventional all-or-nothing TLS
    // architecture", and sub-threads + tuning together unlock the
    // full gain.
    std::printf("\n=== Software tuning x sub-thread support "
                "(Section 1) ===\n");
    for (int tuned = 0; tuned < 2; ++tuned)
        for (int sub = 0; sub < 2; ++sub)
            line(strfmt("%s DB, %s", tuned ? "tuned" : "untuned",
                        sub ? "8 sub-threads" : "all-or-nothing"),
                 res[j_matrix[tuned][sub]], seq);

    return session.finish();
}
