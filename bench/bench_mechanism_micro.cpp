/**
 * @file
 * Quantifies the paper's mechanism illustrations (Figures 1, 2 and 4)
 * with planted-dependence micro-workloads, plus the design-choice
 * ablations called out in DESIGN.md:
 *
 *  F1  rewind scope: a late violation in a large thread rewinds the
 *      whole thread without sub-threads, one sub-thread with them;
 *  F2  dependence-removal tuning: removing an early dependence helps
 *      only when sub-threads bound the damage of the remaining late
 *      dependence;
 *  F4  selective secondary violations via the sub-thread start table;
 *  A1  victim cache on/off under speculative-state pressure;
 *  A2  periodic vs adaptive sub-thread spacing (Section 5.1).
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/log.h"
#include "bench/benchutil.h"
#include "core/machine.h"
#include "core/resulthash.h"
#include "core/site.h"
#include "core/tracer.h"

using namespace tlsim;

namespace {

// Micro-workloads replay in microseconds and share planted state, so
// they run serially regardless of --jobs; the flag is still accepted
// (and recorded in the JSON) for a uniform bench interface.
bench::BenchReport *g_report = nullptr;
std::string g_section;

// --det-probe digests, collected as each workload is built and each
// run lands, folded into probe stages at the end of main().
std::vector<std::uint64_t> g_captureDigests;
std::vector<std::uint64_t> g_replayDigests;

bool
probing()
{
    return g_report && g_report->probe().enabled();
}

class MicroBuilder
{
  public:
    MicroBuilder() : mem_(65536, 0)
    {
        pc_ = SiteRegistry::instance().intern("micro.site");
    }

    void *addr(std::size_t w) { return &mem_.at(w); }
    Pc pc() const { return pc_; }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        Tracer::Options o;
        o.parallelMode = true;
        o.spawnOverheadInsts = 50;
        Tracer t(o);
        t.txnBegin();
        t.loopBegin();
        for (const auto &body : bodies) {
            t.iterBegin();
            body(t);
        }
        t.loopEnd();
        t.txnEnd();
        WorkloadTrace w = t.takeWorkload();
        if (probing())
            g_captureDigests.push_back(det::hashWorkloadTrace(w));
        return w;
    }

  private:
    std::vector<std::uint64_t> mem_;
    Pc pc_;
};

MachineConfig
config(unsigned k, std::uint64_t spacing)
{
    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = k;
    cfg.tls.subthreadSpacing = spacing;
    return cfg;
}

void
report(const char *label, const RunResult &r)
{
    std::printf("  %-34s makespan %9llu  failed %9llu  rewound-insts "
                "%9llu  violations %llu\n",
                label, static_cast<unsigned long long>(r.makespan),
                static_cast<unsigned long long>(r.total[Cat::Failed]),
                static_cast<unsigned long long>(r.rewoundInsts),
                static_cast<unsigned long long>(r.primaryViolations +
                                                r.secondaryViolations));
    if (probing())
        g_replayDigests.push_back(det::hashRunResult(r));
    if (g_report) {
        g_report->addSimulatedCycles(static_cast<double>(r.makespan));
        g_report->addReplayRecords(
            static_cast<double>(r.recordsReplayed));
        g_report->addAuditChecks(static_cast<double>(r.auditChecks));
        g_report->add(
            g_section + "/" + label,
            {{"makespan", static_cast<double>(r.makespan)},
             {"failed_cycles",
              static_cast<double>(r.total[Cat::Failed])},
             {"rewound_insts", static_cast<double>(r.rewoundInsts)},
             {"violations",
              static_cast<double>(r.primaryViolations +
                                  r.secondaryViolations)}});
    }
}

// --- Figure 1: rewind scope ------------------------------------------

void
figure1()
{
    std::printf("=== Figure 1: sub-threads bound the rewind of a late "
                "violation ===\n");
    g_section = "figure1";
    MicroBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 60000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 50000); // long prefix of useful work
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 5000);
    };
    auto w = b.loopTxn({writer, reader});

    TlsMachine all_or_nothing(config(1, 5000));
    TlsMachine subthreads(config(8, 5000));
    report("all-or-nothing", all_or_nothing.run(w, ExecMode::Tls));
    report("8 sub-threads @5k", subthreads.run(w, ExecMode::Tls));
    std::printf("\n");
}

// --- Figure 2: tuning only pays off with sub-threads -----------------

void
figure2()
{
    std::printf("=== Figure 2: removing an early dependence helps only "
                "with sub-threads ===\n");
    MicroBuilder b;

    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 20000);
        t.store(b.pc(), b.addr(64), 8); // *p (early for the reader)
        t.compute(b.pc(), 30000);
        t.store(b.pc(), b.addr(128), 8); // *q (late)
    };
    auto readerBoth = [&b](Tracer &t) {
        t.compute(b.pc(), 5000);
        t.load(b.pc(), b.addr(64), 8); // depends on *p
        t.compute(b.pc(), 35000);
        t.load(b.pc(), b.addr(128), 8); // depends on *q
        t.compute(b.pc(), 5000);
    };
    auto readerQOnly = [&b](Tracer &t) {
        t.compute(b.pc(), 5000);
        t.load(b.pc(), b.addr(8192), 8); // *p dependence removed
        t.compute(b.pc(), 35000);
        t.load(b.pc(), b.addr(128), 8);
        t.compute(b.pc(), 5000);
    };

    auto both = b.loopTxn({writer, readerBoth});
    auto q_only = b.loopTxn({writer, readerQOnly});

    for (unsigned k : {1u, 8u}) {
        g_section = strfmt("figure2/k%u", k);
        TlsMachine m1(config(k, 5000));
        TlsMachine m2(config(k, 5000));
        RunResult r_both = m1.run(both, ExecMode::Tls);
        RunResult r_q = m2.run(q_only, ExecMode::Tls);
        std::printf(" k=%u:\n", k);
        report("both dependences", r_both);
        report("early dependence removed", r_q);
        double gain = r_both.makespan
                          ? 100.0 *
                                (static_cast<double>(r_both.makespan) -
                                 static_cast<double>(r_q.makespan)) /
                                static_cast<double>(r_both.makespan)
                          : 0;
        std::printf("  -> tuning gain: %.1f%%\n", gain);
    }
    std::printf("\n");
}

// --- Figure 4: selective secondary violations ------------------------

void
figure4()
{
    std::printf("=== Figure 4: start table makes secondary violations "
                "selective ===\n");
    g_section = "figure4";
    MicroBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 30000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 25000);
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 5000);
    };
    auto bystander = [&b](Tracer &t) {
        for (int i = 0; i < 300; ++i) {
            t.compute(b.pc(), 90);
            t.load(b.pc(), b.addr(1024 + (i % 64)), 8);
        }
    };
    auto w = b.loopTxn({writer, reader, bystander, bystander});

    MachineConfig with_table = config(8, 1000);
    MachineConfig without_table = config(8, 1000);
    without_table.tls.useStartTable = false;

    TlsMachine m1(with_table), m2(without_table);
    report("with start table (Fig 4b)", m1.run(w, ExecMode::Tls));
    report("without start table (Fig 4a)", m2.run(w, ExecMode::Tls));
    std::printf("\n");
}

// --- Ablation: victim cache ------------------------------------------

void
ablationVictim()
{
    std::printf("=== Ablation: speculative victim cache under conflict "
                "pressure ===\n");
    MicroBuilder b;
    std::vector<std::function<void(Tracer &)>> bodies;
    for (int e = 0; e < 4; ++e) {
        bodies.push_back([&b, e](Tracer &t) {
            // Stores striding one L2 set (small L2 below).
            for (int i = 0; i < 48; ++i) {
                t.store(b.pc(), b.addr(2048 * e + i * 32), 8);
                t.compute(b.pc(), 120);
            }
        });
    }
    auto w = b.loopTxn(bodies);

    MachineConfig small = config(4, 2000);
    small.mem.l2Bytes = 8 * 4 * 32; // 8 sets
    MachineConfig no_victim = small;
    no_victim.tls.useVictimCache = false;

    TlsMachine m1(small), m2(no_victim);
    RunResult with_v = m1.run(w, ExecMode::Tls);
    RunResult without_v = m2.run(w, ExecMode::Tls);
    auto show = [](const char *label, const RunResult &r) {
        std::printf("  %-34s overflows %llu, makespan %llu\n", label,
                    static_cast<unsigned long long>(r.overflowEvents),
                    static_cast<unsigned long long>(r.makespan));
        if (probing())
            g_replayDigests.push_back(det::hashRunResult(r));
        if (g_report) {
            g_report->addSimulatedCycles(
                static_cast<double>(r.makespan));
            g_report->add(
                std::string("victim/") + label,
                {{"makespan", static_cast<double>(r.makespan)},
                 {"overflows",
                  static_cast<double>(r.overflowEvents)}});
        }
    };
    show("with 64-entry victim cache", with_v);
    show("without victim cache", without_v);
    std::printf("\n");
}

// --- Ablation: adaptive spacing (Section 5.1) ------------------------

void
ablationAdaptive()
{
    std::printf("=== Ablation: periodic vs adaptive sub-thread spacing "
                "===\n");
    g_section = "adaptive";
    MicroBuilder b;
    // A thread far larger than the fixed spacing covers: 8 contexts at
    // 5k instructions protect only the first 40k of a 155k-instruction
    // thread, so a violation at 150k rewinds ~110k instructions.
    // Adaptive spacing (size/k ~ 19k) keeps a checkpoint within ~19k
    // of any point.
    auto big_epoch = [&b](Tracer &t) {
        t.compute(b.pc(), 150000);
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 5000);
    };
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 700000); // stores well after the load above
        t.store(b.pc(), b.addr(64), 8);
    };
    auto w = b.loopTxn({writer, big_epoch});

    MachineConfig periodic = config(8, 5000);
    MachineConfig adaptive = config(8, 5000);
    adaptive.tls.adaptiveSpacing = true;

    TlsMachine m1(periodic), m2(adaptive);
    report("periodic every 5k insts", m1.run(w, ExecMode::Tls));
    report("adaptive (size/k)", m2.run(w, ExecMode::Tls));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchSession session("bench_mechanism_micro",
                                bench::parseArgs(argc, argv));
    g_report = &session.report;
    figure1();
    figure2();
    figure4();
    ablationVictim();
    ablationAdaptive();
    if (probing()) {
        session.report.probe().stageItems("capture", g_captureDigests);
        session.report.probe().stageItems("replay", g_replayDigests);
    }
    return session.finish();
}
