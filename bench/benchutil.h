/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: argument
 * parsing (--quick for a reduced-scale run, --txns=N) and per-benchmark
 * capture sizing.
 */

#ifndef BENCH_BENCHUTIL_H
#define BENCH_BENCHUTIL_H

#include <cstring>
#include <string>

#include "sim/experiment.h"

namespace tlsim {
namespace bench {

/** Parsed command line for a reproduction bench. */
struct BenchArgs
{
    bool quick = false;     ///< reduced TPC-C scale (CI-friendly)
    unsigned txns = 0;      ///< 0 = per-benchmark default
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick")
            args.quick = true;
        else if (a.rfind("--txns=", 0) == 0)
            args.txns = static_cast<unsigned>(
                std::stoul(a.substr(7)));
        else if (a == "--help") {
            std::printf("usage: %s [--quick] [--txns=N]\n", argv[0]);
            std::exit(0);
        }
    }
    return args;
}

/**
 * Experiment configuration for one benchmark. Large-thread benchmarks
 * (NEW ORDER 150, DELIVERY OUTER) capture fewer transactions since a
 * single transaction already provides hundreds of thousands of
 * instructions of parallel work.
 */
inline sim::ExperimentConfig
configFor(tpcc::TxnType type, const BenchArgs &args)
{
    sim::ExperimentConfig cfg;
    if (args.quick) {
        cfg.scale = tpcc::TpccConfig::tiny();
        cfg.scale.items = 2000;
        cfg.scale.customersPerDistrict = 150;
        cfg.scale.ordersPerDistrict = 150;
        cfg.scale.firstNewOrder = 76;
    } else {
        // Full single-warehouse TPC-C, as in the paper.
        cfg.scale = tpcc::TpccConfig{};
    }

    switch (type) {
      case tpcc::TxnType::NewOrder150:
        cfg.txns = 6;
        cfg.warmupTxns = 1;
        break;
      case tpcc::TxnType::DeliveryOuter:
      case tpcc::TxnType::Delivery:
        cfg.txns = 8;
        cfg.warmupTxns = 2;
        break;
      default:
        cfg.txns = 12;
        cfg.warmupTxns = 2;
        break;
    }
    if (args.txns) {
        cfg.txns = args.txns;
        cfg.warmupTxns = args.txns > 4 ? 2 : 1;
    }
    return cfg;
}

} // namespace bench
} // namespace tlsim

#endif // BENCH_BENCHUTIL_H
