/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries:
 *
 *  - strict argument parsing (--quick, --txns=N, --jobs=N,
 *    --json=FILE, --trace-cache=DIR); unknown flags are an error so CI
 *    typos fail loudly instead of silently running the default;
 *  - per-benchmark capture sizing;
 *  - a machine-readable result reporter emitting the "tlsim-bench-v1"
 *    JSON schema (validated by tools/check_bench_json.py).
 */

#ifndef BENCH_BENCHUTIL_H
#define BENCH_BENCHUTIL_H

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "base/config.h"
#include "base/dethash.h"
#include "base/log.h"
#include "base/simd.h"
#include "base/stats.h"
#include "sim/executor.h"
#include "sim/experiment.h"
#include "sim/tracecache.h"

namespace tlsim {
namespace bench {

/** Parsed command line for a reproduction bench. */
struct BenchArgs
{
    bool quick = false;     ///< reduced TPC-C scale (CI-friendly)
    unsigned txns = 0;      ///< 0 = per-benchmark default
    unsigned jobs = 1;      ///< simulation points in flight; 0 = auto
    std::string json;       ///< write machine-readable results here
    std::string traceCache; ///< reuse trace snapshots from this dir
    /** Escape hatch: ignore the conflict-oracle bits of the trace
     *  pre-analysis (results must be identical; replay is slower). */
    bool noTraceIndex = false;
    /** Protocol invariant auditor level (off|commit|full). */
    std::string audit = "off";
    /** Pin the SIMD dispatch to the portable scalar kernels (results
     *  must be identical; the golden label compares both legs). */
    bool forceScalar = false;
    /** Sweep pruning: "oracle" scores every grid point with the
     *  critical-path analyzer and simulates only the predicted
     *  frontier (bench_figure6_sweep). */
    std::string prune = "none";
    /** Sub-thread start-point policy: "fixed" spacing or predicted
     *  exposed-load "risk" records (TlsConfig::riskPlacement). */
    std::string placement = "fixed";
    /** Hash the canonical result stream after each stage and emit the
     *  digests in the `determinism` JSON block (base/dethash.h). */
    bool detProbe = false;
};

[[noreturn]] inline void
usage(const char *prog, int code)
{
    std::FILE *out = code == 0 ? stdout : stderr;
    std::fprintf(out,
                 "usage: %s [--quick] [--txns=N] [--jobs=N] "
                 "[--json=FILE] [--trace-cache=DIR] "
                 "[--no-trace-index] [--audit=off|commit|full] "
                 "[--force-scalar] [--prune=none|oracle] "
                 "[--placement=fixed|risk] [--det-probe]\n"
                 "  --quick            reduced TPC-C scale (CI)\n"
                 "  --txns=N           transactions per capture\n"
                 "  --jobs=N           parallel simulation points "
                 "(0 = all cores, default 1)\n"
                 "  --json=FILE        machine-readable results "
                 "(tlsim-bench-v1 schema)\n"
                 "  --trace-cache=DIR  reuse on-disk trace snapshots\n"
                 "  --no-trace-index   disable the conflict-oracle "
                 "fast path (identical results, slower replay)\n"
                 "  --audit=LEVEL      protocol invariant auditor "
                 "(off|commit|full; results must be identical)\n"
                 "  --force-scalar     use the portable scalar kernels "
                 "(identical results; golden-label comparison)\n"
                 "  --prune=MODE       sweep pruning: 'oracle' scores "
                 "grid points with the critical-path analyzer and "
                 "simulates only the predicted frontier\n"
                 "  --placement=POLICY sub-thread start points: 'fixed' "
                 "spacing or predicted-'risk' records\n"
                 "  --det-probe        hash the canonical result stream "
                 "per stage into the 'determinism' JSON block\n",
                 prog);
    std::exit(code);
}

inline unsigned
parseUnsigned(const std::string &flag, const std::string &val,
              const char *prog)
{
    try {
        std::size_t pos = 0;
        unsigned long v = std::stoul(val, &pos);
        if (pos != val.size() || v > 0xFFFFFFFFul)
            throw std::invalid_argument(val);
        return static_cast<unsigned>(v);
    } catch (const std::exception &) {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n", prog,
                     flag.c_str(), val.c_str());
        std::exit(2);
    }
}

/**
 * Parse the bench command line. Unknown arguments are fatal (exit 2):
 * a misspelled flag must not silently fall back to default behaviour.
 */
inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&](const char *prefix) {
            return a.substr(std::strlen(prefix));
        };
        if (a == "--quick")
            args.quick = true;
        else if (a.rfind("--txns=", 0) == 0)
            args.txns = parseUnsigned("--txns", value("--txns="),
                                      argv[0]);
        else if (a.rfind("--jobs=", 0) == 0)
            args.jobs = parseUnsigned("--jobs", value("--jobs="),
                                      argv[0]);
        else if (a.rfind("--json=", 0) == 0)
            args.json = value("--json=");
        else if (a.rfind("--trace-cache=", 0) == 0)
            args.traceCache = value("--trace-cache=");
        else if (a == "--no-trace-index")
            args.noTraceIndex = true;
        else if (a.rfind("--audit=", 0) == 0)
            args.audit = value("--audit=");
        else if (a == "--force-scalar")
            args.forceScalar = true;
        else if (a.rfind("--prune=", 0) == 0)
            args.prune = value("--prune=");
        else if (a.rfind("--placement=", 0) == 0)
            args.placement = value("--placement=");
        else if (a == "--det-probe")
            args.detProbe = true;
        else if (a == "--help" || a == "-h")
            usage(argv[0], 0);
        else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         a.c_str());
            usage(argv[0], 2);
        }
    }
    if (args.prune != "none" && args.prune != "oracle") {
        std::fprintf(stderr, "%s: bad value for --prune: '%s'\n",
                     argv[0], args.prune.c_str());
        std::exit(2);
    }
    if (args.placement != "fixed" && args.placement != "risk") {
        std::fprintf(stderr, "%s: bad value for --placement: '%s'\n",
                     argv[0], args.placement.c_str());
        std::exit(2);
    }
    return args;
}

/** Executor sized from --jobs (0 = one worker per hardware thread). */
inline sim::SimExecutor
makeExecutor(const BenchArgs &args)
{
    return sim::SimExecutor(args.jobs);
}

/** Capture (or reload from --trace-cache) one benchmark's traces. */
inline sim::SharedTraces
capture(tpcc::TxnType type, const sim::ExperimentConfig &cfg,
        const BenchArgs &args)
{
    return sim::captureTracesShared(type, cfg, args.traceCache);
}

/**
 * Experiment configuration for one benchmark. Large-thread benchmarks
 * (NEW ORDER 150, DELIVERY OUTER) capture fewer transactions since a
 * single transaction already provides hundreds of thousands of
 * instructions of parallel work.
 */
inline sim::ExperimentConfig
configFor(tpcc::TxnType type, const BenchArgs &args)
{
    sim::ExperimentConfig cfg;
    if (args.quick) {
        cfg.scale = tpcc::TpccConfig::tiny();
        cfg.scale.items = 2000;
        cfg.scale.customersPerDistrict = 150;
        cfg.scale.ordersPerDistrict = 150;
        cfg.scale.firstNewOrder = 76;
    } else {
        // Full single-warehouse TPC-C, as in the paper.
        cfg.scale = tpcc::TpccConfig{};
    }

    switch (type) {
      case tpcc::TxnType::NewOrder150:
        cfg.txns = 6;
        cfg.warmupTxns = 1;
        break;
      case tpcc::TxnType::DeliveryOuter:
      case tpcc::TxnType::Delivery:
        cfg.txns = 8;
        cfg.warmupTxns = 2;
        break;
      default:
        cfg.txns = 12;
        cfg.warmupTxns = 2;
        break;
    }
    if (args.txns) {
        cfg.txns = args.txns;
        cfg.warmupTxns = args.txns > 4 ? 2 : 1;
    }
    cfg.machine.tls.useConflictOracle = !args.noTraceIndex;
    cfg.machine.tls.auditLevel = parseAuditLevel(args.audit);
    cfg.machine.tls.riskPlacement = args.placement == "risk";
    return cfg;
}

// ---------------------------------------------------------------------
// Machine-readable results ("tlsim-bench-v1")
// ---------------------------------------------------------------------

/**
 * Collects named result entries plus wall-clock and simulated-cycle
 * totals and writes them as JSON:
 *
 *     {
 *       "schema": "tlsim-bench-v1",
 *       "bench": "<binary name>",
 *       "quick": true,
 *       "jobs": 2,
 *       "wall_seconds": 1.23,
 *       "simulated_cycles": 4.56e8,
 *       "results": [ {"name": "...", "<metric>": <number>, ...}, ... ]
 *     }
 *
 * The timer starts at construction; write() stops it.
 */
class BenchReport
{
  public:
    using Fields = std::vector<std::pair<std::string, double>>;

    BenchReport(std::string bench, const BenchArgs &args,
                unsigned resolved_jobs)
        : bench_(std::move(bench)), quick_(args.quick),
          jobs_(resolved_jobs), probe_(args.detProbe),
          start_(std::chrono::steady_clock::now())
    {
    }

    /** The --det-probe stage-digest collector (no-op when disabled). */
    det::Probe &probe() { return probe_; }

    /** Add one named result row; every field must be numeric. */
    void
    add(std::string name, Fields fields)
    {
        results_.emplace_back(std::move(name), std::move(fields));
    }

    /** Count cycles of simulated machine time toward the total. */
    void
    addSimulatedCycles(double cycles)
    {
        simulatedCycles_ += cycles;
    }

    /** Count trace records dispatched by the replay engine (the
     *  numerator of the reported records_per_second throughput). */
    void
    addReplayRecords(double records)
    {
        replayRecords_ += records;
    }

    /** Record the auditor level so write() emits the "audit" block. */
    void
    setAuditLevel(std::string level)
    {
        auditLevel_ = std::move(level);
    }

    /** Count invariant checks performed by the runtime auditor. */
    void
    addAuditChecks(double checks)
    {
        auditChecks_ += checks;
    }

    /**
     * Record the model-checker totals; write() then emits the
     * "modelcheck" block (validated by tools/check_bench_json.py).
     * states is the number of explored model states (transitions
     * executed across all schedules), reduction the naive/DPOR
     * schedule ratio on the reduction instances.
     */
    void
    setModelcheck(double states, double schedules, double reduction,
                  double violations)
    {
        mcStates_ = states;
        mcSchedules_ = schedules;
        mcReduction_ = reduction;
        mcViolations_ = violations;
        hasModelcheck_ = true;
    }

    /**
     * Record the critical-path oracle totals; write() then emits the
     * "critpath" block (validated by tools/check_bench_json.py).
     * `predicted` is the calibrated predicted makespan summed over
     * every scored grid point, `band_error` the largest relative
     * error observed on points that were both predicted and
     * simulated, and the point counts carry the pruning claim:
     * at most half the scored points may have been simulated.
     */
    void
    setCritpath(double predicted, double band_error, double total,
                double simulated)
    {
        cpPredicted_ = predicted;
        cpBandError_ = band_error;
        cpTotal_ = total;
        cpSimulated_ = simulated;
        hasCritpath_ = true;
    }

    double
    wallSeconds() const
    {
        // tlsdet:allow(D2): timing-only wall_seconds/records_per_second
        auto end = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(end - start_).count();
    }

    /** Write the report; returns false (with a message) on I/O error. */
    bool
    write(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "cannot write JSON to '%s'\n",
                         path.c_str());
            return false;
        }
        os << "{\n";
        os << "  \"schema\": \"tlsim-bench-v1\",\n";
        os << "  \"bench\": \"" << escape(bench_) << "\",\n";
        os << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n";
        os << "  \"jobs\": " << jobs_ << ",\n";
        double wall = wallSeconds();
        os << "  \"wall_seconds\": " << wall << ",\n";
        os << "  \"simulated_cycles\": " << simulatedCycles_ << ",\n";
        os << "  \"replay_records\": " << replayRecords_ << ",\n";
        os << "  \"records_per_second\": "
           << (wall > 0 ? replayRecords_ / wall : 0) << ",\n";
        if (auditLevel_ != "off") {
            // The auditor throws on the first violated invariant, so a
            // report that got as far as write() always has zero.
            os << "  \"audit\": {\"level\": \"" << escape(auditLevel_)
               << "\", \"invariants_checked\": " << auditChecks_
               << ", \"violations\": 0},\n";
        }
        if (hasModelcheck_) {
            os << "  \"modelcheck\": {\"states_explored\": "
               << mcStates_ << ", \"schedules\": " << mcSchedules_
               << ", \"dpor_reduction\": " << mcReduction_
               << ", \"violations\": " << mcViolations_ << "},\n";
        }
        if (hasCritpath_) {
            os << "  \"critpath\": {\"predicted_makespan\": "
               << cpPredicted_ << ", \"band_error\": " << cpBandError_
               << ", \"points_total\": " << cpTotal_
               << ", \"points_simulated\": " << cpSimulated_
               << "},\n";
        }
        // Replay-path instrumentation: the active SIMD kernel set and
        // the "replay.*" global counter group (epoch/record totals,
        // arena effectiveness). Always present in new reports.
        os << "  \"replay\": {\"simd\": \"" << escape(simd::activeName())
           << "\"";
        for (const auto &[name, val] :
             stats::GlobalCounters::instance().snapshot()) {
            if (name.rfind("replay.", 0) == 0)
                os << ", \"" << escape(name.substr(7)) << "\": " << val;
        }
        os << "},\n";
        std::string rendered = renderResults();
        if (probe_.enabled()) {
            // The serialize-stage digest covers the exact bytes about
            // to be written for the results array — the final,
            // printf-formatted form of the canonical result stream.
            det::Hash ser;
            ser.str(rendered);
            os << "  \"determinism\": {\"jobs_invariant\": "
               << (probe_.jobsInvariant() ? "true" : "false")
               << ", \"stages\": {";
            for (const auto &[name, digest] : probe_.stages())
                os << "\"" << escape(name) << "\": \"" << hex64(digest)
                   << "\", ";
            os << "\"serialize\": \"" << hex64(ser.value())
               << "\"}},\n";
        }
        os << "  \"results\": [" << rendered << "\n  ]\n}\n";
        return static_cast<bool>(os);
    }

    /** write() if --json was given; true when skipped or successful. */
    bool
    writeIfRequested(const BenchArgs &args) const
    {
        return args.json.empty() || write(args.json);
    }

  private:
    /** Render the results array body exactly as write() emits it. */
    std::string
    renderResults() const
    {
        std::ostringstream os;
        for (std::size_t i = 0; i < results_.size(); ++i) {
            os << (i ? ",\n    {" : "\n    {");
            os << "\"name\": \"" << escape(results_[i].first) << "\"";
            for (const auto &[k, v] : results_[i].second)
                os << ", \"" << escape(k) << "\": " << v;
            os << "}";
        }
        return os.str();
    }

    static std::string
    hex64(std::uint64_t v)
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        for (int i = 0; i < 16; ++i)
            out[i] = digits[(v >> (60 - 4 * i)) & 0xF];
        return out;
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
                continue;
            }
            out += c;
        }
        return out;
    }

    std::string bench_;
    bool quick_;
    unsigned jobs_;
    det::Probe probe_;
    std::chrono::steady_clock::time_point start_;
    double simulatedCycles_ = 0;
    double replayRecords_ = 0;
    std::string auditLevel_ = "off";
    double auditChecks_ = 0;
    bool hasModelcheck_ = false;
    double mcStates_ = 0;
    double mcSchedules_ = 0;
    double mcReduction_ = 0;
    double mcViolations_ = 0;
    bool hasCritpath_ = false;
    double cpPredicted_ = 0;
    double cpBandError_ = 0;
    double cpTotal_ = 0;
    double cpSimulated_ = 0;
    std::vector<std::pair<std::string, Fields>> results_;
};

/**
 * The shared main() prologue/epilogue of the reproduction benches:
 * parse the command line, quiet the inform stream, size the executor
 * from --jobs, and open the report with the resolved job count and
 * audit level. finish() writes the JSON (when --json was given) and
 * converts the outcome into main()'s exit status.
 */
struct BenchSession
{
    BenchArgs args;
    sim::SimExecutor ex;
    BenchReport report;

    BenchSession(const char *bench, int argc, char **argv)
        : args(parseArgs(argc, argv)), ex(makeExecutor(args)),
          report(bench, args, ex.jobs())
    {
        setInformEnabled(false);
        report.setAuditLevel(args.audit);
        if (args.forceScalar)
            simd::setForceScalar(true);
    }

    /**
     * Pre-parsed variant for benches that filter the command line
     * themselves (bench_micro_components hands --benchmark_* flags to
     * google-benchmark first) or are single-threaded by construction
     * (bench_mechanism_micro): --jobs is accepted for interface
     * uniformity but resolves to one worker, and the inform stream is
     * left alone.
     */
    BenchSession(const char *bench, BenchArgs parsed)
        : args(std::move(parsed)), ex(1), report(bench, args, 1)
    {
        report.setAuditLevel(args.audit);
        if (args.forceScalar)
            simd::setForceScalar(true);
    }

    int
    finish() const
    {
        return report.writeIfRequested(args) ? 0 : 1;
    }
};

} // namespace bench
} // namespace tlsim

#endif // BENCH_BENCHUTIL_H
