/**
 * @file
 * Reproduces Figure 5 of the paper: overall performance of the seven
 * optimized benchmarks on the 4-CPU system, as normalized execution
 * time broken into {idle, failed, latch stall, sync, cache miss, busy}
 * for the five configurations {SEQUENTIAL, TLS-SEQ, NO SUB-THREAD,
 * BASELINE, NO SPECULATION}.
 *
 * Shape targets from the paper:
 *  - SEQUENTIAL is 3/4 idle (one CPU of four works);
 *  - TLS-SEQ lands within 0.93x-1.05x of SEQUENTIAL;
 *  - BASELINE (8 sub-threads @ 5k insts) speeds up NEW ORDER,
 *    NEW ORDER 150, DELIVERY, DELIVERY OUTER and STOCK LEVEL, with
 *    1.9x-2.9x for three of the five distinct transactions, and sits
 *    close to NO SPECULATION for the NEW ORDER variants and
 *    DELIVERY OUTER;
 *  - NO SUB-THREAD leaves large failed-speculation components
 *    (DELIVERY OUTER more than 2x slower than BASELINE);
 *  - PAYMENT and ORDER STATUS do not improve (coverage-bound).
 *
 * Captures run serially up front (synthetic-PC assignment is
 * interning-order dependent); the (benchmark x bar) simulation points
 * then fan out across --jobs workers. Results land in index-assigned
 * slots, so the report is bit-identical for any job count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "base/log.h"
#include "bench/benchutil.h"
#include "core/resulthash.h"
#include "sim/report.h"

using namespace tlsim;

int
main(int argc, char **argv)
{
    bench::BenchSession session("bench_figure5_overall", argc, argv);
    bench::BenchArgs &args = session.args;
    sim::SimExecutor &ex = session.ex;
    bench::BenchReport &report = session.report;

    std::cout << "Machine configuration (paper Table 1):\n";
    sim::ExperimentConfig probe =
        bench::configFor(tpcc::TxnType::NewOrder, args);
    probe.machine.print(std::cout);
    std::cout << "\n";

    const auto &benches = tpcc::allBenchmarks();
    const std::vector<sim::Bar> &bars = sim::allBars();

    // Serial capture phase (each benchmark exactly once).
    std::vector<sim::ExperimentConfig> cfgs;
    std::vector<sim::SharedTraces> traces;
    for (tpcc::TxnType type : benches) {
        std::fprintf(stderr, "capturing %s...\n",
                     tpcc::txnTypeName(type));
        cfgs.push_back(bench::configFor(type, args));
        traces.push_back(bench::capture(type, cfgs.back(), args));
    }
    if (report.probe().enabled()) {
        std::vector<std::uint64_t> caps;
        for (const sim::SharedTraces &t : traces) {
            det::Hash h;
            h.u64(det::hashWorkloadTrace(t->original));
            h.u64(det::hashWorkloadTrace(t->tls));
            caps.push_back(h.value());
        }
        report.probe().stageItems("capture", caps);
    }

    // Parallel simulation phase: one task per (benchmark, bar).
    std::vector<RunResult> runs(benches.size() * bars.size());
    ex.parallelFor(runs.size(), [&](std::size_t i) {
        std::size_t b = i / bars.size();
        runs[i] = sim::runBar(bars[i % bars.size()], *traces[b],
                              cfgs[b]);
    });
    if (report.probe().enabled()) {
        std::vector<std::uint64_t> digests;
        for (const RunResult &r : runs)
            digests.push_back(det::hashRunResult(r));
        report.probe().stageItems("replay", digests);
    }

    std::vector<sim::Figure5Row> rows;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        sim::Figure5Row row;
        row.type = benches[b];
        for (std::size_t j = 0; j < bars.size(); ++j)
            row.bars.emplace_back(bars[j],
                                  std::move(runs[b * bars.size() + j]));
        sim::printFigure5Row(std::cout, row);
        for (const auto &[bar, r] : row.bars) {
            report.addSimulatedCycles(static_cast<double>(r.makespan));
            report.addReplayRecords(
                static_cast<double>(r.recordsReplayed));
            report.addAuditChecks(static_cast<double>(r.auditChecks));
            report.add(
                std::string(tpcc::txnTypeName(row.type)) + "/" +
                    sim::barName(bar),
                {{"makespan", static_cast<double>(r.makespan)},
                 {"speedup", row.speedup(bar)}});
        }
        rows.push_back(std::move(row));
    }
    if (report.probe().enabled()) {
        std::vector<std::uint64_t> agg;
        for (const sim::Figure5Row &row : rows) {
            det::Hash h;
            h.str(tpcc::txnTypeName(row.type));
            for (const auto &[bar, r] : row.bars) {
                h.str(sim::barName(bar));
                h.u64(r.makespan);
                h.f64(row.speedup(bar));
            }
            agg.push_back(h.value());
        }
        report.probe().stageItems("aggregate", agg);
    }

    sim::printSpeedupSummary(std::cout, rows);
    return session.finish();
}
