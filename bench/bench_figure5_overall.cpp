/**
 * @file
 * Reproduces Figure 5 of the paper: overall performance of the seven
 * optimized benchmarks on the 4-CPU system, as normalized execution
 * time broken into {idle, failed, latch stall, sync, cache miss, busy}
 * for the five configurations {SEQUENTIAL, TLS-SEQ, NO SUB-THREAD,
 * BASELINE, NO SPECULATION}.
 *
 * Shape targets from the paper:
 *  - SEQUENTIAL is 3/4 idle (one CPU of four works);
 *  - TLS-SEQ lands within 0.93x-1.05x of SEQUENTIAL;
 *  - BASELINE (8 sub-threads @ 5k insts) speeds up NEW ORDER,
 *    NEW ORDER 150, DELIVERY, DELIVERY OUTER and STOCK LEVEL, with
 *    1.9x-2.9x for three of the five distinct transactions, and sits
 *    close to NO SPECULATION for the NEW ORDER variants and
 *    DELIVERY OUTER;
 *  - NO SUB-THREAD leaves large failed-speculation components
 *    (DELIVERY OUTER more than 2x slower than BASELINE);
 *  - PAYMENT and ORDER STATUS do not improve (coverage-bound).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "base/log.h"
#include "bench/benchutil.h"
#include "sim/report.h"

using namespace tlsim;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    setInformEnabled(false);

    std::cout << "Machine configuration (paper Table 1):\n";
    sim::ExperimentConfig probe =
        bench::configFor(tpcc::TxnType::NewOrder, args);
    probe.machine.print(std::cout);
    std::cout << "\n";

    std::vector<sim::Figure5Row> rows;
    for (tpcc::TxnType type : tpcc::allBenchmarks()) {
        std::fprintf(stderr, "running %s...\n",
                     tpcc::txnTypeName(type));
        rows.push_back(
            sim::runFigure5(type, bench::configFor(type, args)));
        sim::printFigure5Row(std::cout, rows.back());
    }

    sim::printSpeedupSummary(std::cout, rows);
    return 0;
}
