/**
 * @file
 * google-benchmark microbenchmarks of the simulator's substrates:
 * simulation-rate engineering numbers rather than paper artifacts.
 * Useful for keeping the trace-replay loop fast enough that the
 * Figure 5/6 sweeps stay interactive.
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "base/rng.h"
#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"
#include "cpu/gshare.h"
#include "db/btree.h"
#include "db/page.h"
#include "mem/l1cache.h"
#include "mem/l2cache.h"

using namespace tlsim;

namespace {

void
BM_L1CacheAccess(benchmark::State &state)
{
    L1Cache c(32 * 1024, 4, 32);
    Rng rng(1);
    for (Addr l = 0; l < 1024; ++l)
        c.insert(l);
    for (auto _ : state) {
        Addr l = static_cast<Addr>(rng.uniform(0, 2047));
        benchmark::DoNotOptimize(c.access(l));
        if (!c.present(l))
            c.insert(l);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1CacheAccess);

void
BM_L2VersionedInsert(benchmark::State &state)
{
    MemConfig m;
    VictimCache victim(64);
    L2Cache l2(m, victim);
    Rng rng(2);
    for (auto _ : state) {
        Addr l = static_cast<Addr>(rng.uniform(0, 1 << 18));
        benchmark::DoNotOptimize(
            l2.insert(l, static_cast<std::uint8_t>(rng.uniform(0, 3))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2VersionedInsert);

void
BM_GSharePredict(benchmark::State &state)
{
    GShare g(16 * 1024, 8);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.predictAndUpdate(
            static_cast<Pc>(rng.uniform(0, 255)) * 64,
            rng.chance(0.6)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GSharePredict);

void
BM_SpecStateLoadStore(benchmark::State &state)
{
    SpecState s(32);
    Rng rng(4);
    std::uint64_t mask = 0xFF;
    unsigned i = 0;
    for (auto _ : state) {
        Addr line = static_cast<Addr>(rng.uniform(0, 4095));
        if (i++ & 1)
            s.recordStore(3, line, 0xF);
        else
            benchmark::DoNotOptimize(s.recordLoad(2, mask, line, 0x3));
        if ((i & 0xFFF) == 0)
            s.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecStateLoadStore);

void
BM_PageInsertRemove(benchmark::State &state)
{
    alignas(64) std::uint8_t frame[db::kPageSize];
    db::Page::init(frame, 1, 0);
    db::Page p(frame);
    Rng rng(5);
    for (auto _ : state) {
        std::string key = strfmt("k%05lld", (long long)rng.uniform(0, 99999));
        auto [idx, found] = p.lowerBound(key);
        if (found)
            p.remove(idx);
        else if (p.fits(static_cast<unsigned>(key.size()), 24))
            p.insert(idx, key, "twenty-four-byte-value!!");
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageInsertRemove);

void
BM_BTreeGet(benchmark::State &state)
{
    db::DbConfig cfg;
    Tracer tracer; // not capturing: traces are no-ops
    db::BufferPool pool(cfg, tracer);
    db::BTree tree(pool, tracer, cfg, "bench");
    for (int i = 0; i < 100000; ++i)
        tree.put(strfmt("key%06d", i), "some-value-bytes", false);
    Rng rng(6);
    db::Bytes v;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.get(
            strfmt("key%06lld", (long long)rng.uniform(0, 99999)), &v));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGet);

void
BM_BTreePut(benchmark::State &state)
{
    db::DbConfig cfg;
    Tracer tracer;
    db::BufferPool pool(cfg, tracer);
    db::BTree tree(pool, tracer, cfg, "bench");
    Rng rng(7);
    for (auto _ : state) {
        tree.put(strfmt("key%07lld", (long long)rng.uniform(0, 2000000)),
                 "value-payload-of-some-size", true);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePut);

/** End-to-end replay rate of the TLS machine (records/second). */
void
BM_MachineReplay(benchmark::State &state)
{
    static Pc pc = SiteRegistry::instance().intern("bench.replay");
    std::vector<std::uint64_t> mem(8192);
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    t.txnBegin();
    t.loopBegin();
    for (int e = 0; e < 8; ++e) {
        t.iterBegin();
        for (int i = 0; i < 500; ++i) {
            t.compute(pc, 60);
            t.load(pc, &mem[512 * e + i % 256], 8);
            t.store(pc, &mem[512 * e + 256 + i % 256], 8);
        }
    }
    t.loopEnd();
    t.txnEnd();
    WorkloadTrace w = t.takeWorkload();

    std::uint64_t records = 0;
    for (const auto &txn : w.txns)
        for (const auto &sec : txn.sections)
            for (const auto &e : sec.epochs)
                records += e.records.size();

    MachineConfig cfg;
    TlsMachine m(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(m.run(w, ExecMode::Tls));
    state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_MachineReplay);

} // namespace

BENCHMARK_MAIN();
