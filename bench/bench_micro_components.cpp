/**
 * @file
 * google-benchmark microbenchmarks of the simulator's substrates:
 * simulation-rate engineering numbers rather than paper artifacts.
 * Useful for keeping the trace-replay loop fast enough that the
 * Figure 5/6 sweeps stay interactive.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "bench/benchutil.h"
#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"
#include "cpu/gshare.h"
#include "db/btree.h"
#include "db/page.h"
#include "mem/l1cache.h"
#include "mem/l2cache.h"

using namespace tlsim;

namespace {

void
BM_L1CacheAccess(benchmark::State &state)
{
    L1Cache c(32 * 1024, 4, 32);
    Rng rng(1);
    for (Addr l = 0; l < 1024; ++l)
        c.insert(l);
    for (auto _ : state) {
        Addr l = static_cast<Addr>(rng.uniform(0, 2047));
        benchmark::DoNotOptimize(c.access(l));
        if (!c.present(l))
            c.insert(l);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1CacheAccess);

void
BM_L2VersionedInsert(benchmark::State &state)
{
    MemConfig m;
    VictimCache victim(64);
    L2Cache l2(m, victim);
    Rng rng(2);
    for (auto _ : state) {
        Addr l = static_cast<Addr>(rng.uniform(0, 1 << 18));
        benchmark::DoNotOptimize(
            l2.insert(l, static_cast<std::uint8_t>(rng.uniform(0, 3))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2VersionedInsert);

void
BM_GSharePredict(benchmark::State &state)
{
    GShare g(16 * 1024, 8);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.predictAndUpdate(
            static_cast<Pc>(rng.uniform(0, 255)) * 64,
            rng.chance(0.6)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GSharePredict);

void
BM_SpecStateLoadStore(benchmark::State &state)
{
    SpecState s(32);
    Rng rng(4);
    std::uint64_t mask = 0xFF;
    unsigned i = 0;
    for (auto _ : state) {
        Addr line = static_cast<Addr>(rng.uniform(0, 4095));
        if (i++ & 1)
            // tlsa:allow(A2): standalone SpecState microbenchmark; no protocol state, the machine's audited seam is not involved
            s.recordStore(3, line, 0xF);
        else
            // tlsa:allow(A2): standalone SpecState microbenchmark; no protocol state, the machine's audited seam is not involved
            benchmark::DoNotOptimize(s.recordLoad(2, mask, line, 0x3));
        if ((i & 0xFFF) == 0)
            s.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecStateLoadStore);

/**
 * The pre-flat-table SpecState (node-based unordered_map), preserved
 * here so `--benchmark_filter=SpecState` reports the open-addressed
 * table's win over the old layout on the identical access pattern.
 */
class BaselineSpecState
{
  public:
    static constexpr unsigned kMaxContexts = 64;

    bool
    recordLoad(ContextId ctx, std::uint64_t thread_mask, Addr line,
               std::uint32_t word_mask)
    {
        auto it = lines_.find(line);
        if (it != lines_.end()) {
            std::uint32_t own = 0;
            std::uint64_t owners = it->second.smOwners & thread_mask;
            while (owners) {
                unsigned c =
                    static_cast<unsigned>(__builtin_ctzll(owners));
                owners &= owners - 1;
                own |= it->second.sm[c];
            }
            if ((word_mask & ~own) == 0)
                return false;
        }
        LineSpec &ls = lines_[line];
        ls.sl |= std::uint64_t{1} << ctx;
        return true;
    }

    void
    recordStore(ContextId ctx, Addr line, std::uint32_t word_mask)
    {
        LineSpec &ls = lines_[line];
        ls.sm[ctx] |= word_mask;
        ls.smOwners |= std::uint64_t{1} << ctx;
    }

    std::uint64_t
    slHolders(Addr line) const
    {
        auto it = lines_.find(line);
        return it == lines_.end() ? 0 : it->second.sl;
    }

    void reset() { lines_.clear(); }

  private:
    struct LineSpec
    {
        std::uint64_t sl = 0;
        std::uint64_t smOwners = 0;
        std::array<std::uint32_t, kMaxContexts> sm{};
    };

    std::unordered_map<Addr, LineSpec> lines_;
};

void
BM_SpecStateBaselineMap(benchmark::State &state)
{
    BaselineSpecState s;
    Rng rng(4); // same stream as BM_SpecStateLoadStore
    std::uint64_t mask = 0xFF;
    unsigned i = 0;
    for (auto _ : state) {
        Addr line = static_cast<Addr>(rng.uniform(0, 4095));
        if (i++ & 1)
            // tlsa:allow(A2): standalone SpecState microbenchmark; no protocol state, the machine's audited seam is not involved
            s.recordStore(3, line, 0xF);
        else
            // tlsa:allow(A2): standalone SpecState microbenchmark; no protocol state, the machine's audited seam is not involved
            benchmark::DoNotOptimize(s.recordLoad(2, mask, line, 0x3));
        if ((i & 0xFFF) == 0)
            s.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecStateBaselineMap);

/** Store-then-check on one line: the last-line cache's fast path. */
void
BM_SpecStateSameLineProbe(benchmark::State &state)
{
    SpecState s(32);
    Addr line = 1234;
    for (auto _ : state) {
        // tlsa:allow(A2): standalone SpecState microbenchmark; no protocol state, the machine's audited seam is not involved
        s.recordStore(3, line, 0xF);
        benchmark::DoNotOptimize(s.slHolders(line));
        // tlsa:allow(A2): standalone SpecState microbenchmark; no protocol state, the machine's audited seam is not involved
        benchmark::DoNotOptimize(s.recordLoad(2, 0xFF, line, 0x3));
    }
    state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_SpecStateSameLineProbe);

void
BM_PageInsertRemove(benchmark::State &state)
{
    alignas(64) std::uint8_t frame[db::kPageSize];
    db::Page::init(frame, 1, 0);
    db::Page p(frame);
    Rng rng(5);
    for (auto _ : state) {
        std::string key = strfmt("k%05lld", (long long)rng.uniform(0, 99999));
        auto [idx, found] = p.lowerBound(key);
        if (found)
            p.remove(idx);
        else if (p.fits(static_cast<unsigned>(key.size()), 24))
            p.insert(idx, key, "twenty-four-byte-value!!");
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageInsertRemove);

void
BM_BTreeGet(benchmark::State &state)
{
    db::DbConfig cfg;
    Tracer tracer; // not capturing: traces are no-ops
    db::BufferPool pool(cfg, tracer);
    db::BTree tree(pool, tracer, cfg, "bench");
    for (int i = 0; i < 100000; ++i)
        tree.put(strfmt("key%06d", i), "some-value-bytes", false);
    Rng rng(6);
    db::Bytes v;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.get(
            strfmt("key%06lld", (long long)rng.uniform(0, 99999)), &v));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGet);

void
BM_BTreePut(benchmark::State &state)
{
    db::DbConfig cfg;
    Tracer tracer;
    db::BufferPool pool(cfg, tracer);
    db::BTree tree(pool, tracer, cfg, "bench");
    Rng rng(7);
    for (auto _ : state) {
        tree.put(strfmt("key%07lld", (long long)rng.uniform(0, 2000000)),
                 "value-payload-of-some-size", true);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePut);

/** End-to-end replay rate of the TLS machine (records/second). */
void
BM_MachineReplay(benchmark::State &state)
{
    static Pc pc = SiteRegistry::instance().intern("bench.replay");
    std::vector<std::uint64_t> mem(8192);
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    t.txnBegin();
    t.loopBegin();
    for (int e = 0; e < 8; ++e) {
        t.iterBegin();
        for (int i = 0; i < 500; ++i) {
            t.compute(pc, 60);
            t.load(pc, &mem[512 * e + i % 256], 8);
            t.store(pc, &mem[512 * e + 256 + i % 256], 8);
        }
    }
    t.loopEnd();
    t.txnEnd();
    WorkloadTrace w = t.takeWorkload();

    std::uint64_t records = 0;
    for (const auto &txn : w.txns)
        for (const auto &sec : txn.sections)
            for (const auto &e : sec.epochs)
                records += e.records.size();

    MachineConfig cfg;
    TlsMachine m(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(m.run(w, ExecMode::Tls));
    state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_MachineReplay);

/**
 * Replay throughput on real TPC-C captures, with the conflict-oracle
 * fast path off (arg 0) and on (arg 1). The pre-analysis index is
 * built once per workload and shared, as the sweep harnesses do; the
 * oracle must change only the records/second rate, never the results
 * (tests/sim/goldenequiv_test.cc enforces the latter).
 */
sim::BenchmarkTraces &
quickTraces(tpcc::TxnType type)
{
    static std::unordered_map<unsigned,
                              std::unique_ptr<sim::BenchmarkTraces>>
        cache;
    auto &slot = cache[static_cast<unsigned>(type)];
    if (!slot) {
        sim::ExperimentConfig cfg;
        cfg.scale = tpcc::TpccConfig::tiny();
        cfg.txns = 4;
        cfg.warmupTxns = 1;
        slot = std::make_unique<sim::BenchmarkTraces>(
            sim::captureTraces(type, cfg));
        slot->buildIndexes(cfg.machine.mem.lineBytes);
    }
    return *slot;
}

void
BM_ReplayTpcc(benchmark::State &state, tpcc::TxnType type)
{
    sim::BenchmarkTraces &traces = quickTraces(type);
    MachineConfig cfg;
    cfg.tls.useConflictOracle = state.range(0) != 0;
    TlsMachine m(cfg);
    std::uint64_t records = 0;
    for (auto _ : state) {
        RunResult r = m.run(traces.tls, ExecMode::Tls,
                            /*warmup_txns=*/1, traces.tlsIndex.get());
        records += r.recordsReplayed;
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK_CAPTURE(BM_ReplayTpcc, NEW_ORDER, tpcc::TxnType::NewOrder)
    ->Arg(0)
    ->Arg(1);
BENCHMARK_CAPTURE(BM_ReplayTpcc, STOCK_LEVEL,
                  tpcc::TxnType::StockLevel)
    ->Arg(0)
    ->Arg(1);

/** Capture-side throughput: tracer append path (records/second). */
void
BM_TraceCapture(benchmark::State &state)
{
    static Pc pc = SiteRegistry::instance().intern("bench.capture");
    std::vector<std::uint64_t> mem(4096);
    std::uint64_t records = 0;
    for (auto _ : state) {
        Tracer::Options o;
        o.parallelMode = true;
        Tracer t(o);
        t.txnBegin();
        t.loopBegin();
        for (int e = 0; e < 4; ++e) {
            t.iterBegin();
            for (int i = 0; i < 400; ++i) {
                t.compute(pc, 40);
                t.load(pc, &mem[512 * e + i % 256], 8);
                t.store(pc, &mem[512 * e + 256 + i % 256], 8);
            }
        }
        t.loopEnd();
        t.txnEnd();
        WorkloadTrace w = t.takeWorkload();
        records = 0;
        for (const auto &txn : w.txns)
            for (const auto &sec : txn.sections)
                for (const auto &e : sec.epochs)
                    records += e.records.size();
        benchmark::DoNotOptimize(records);
    }
    state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_TraceCapture);

/**
 * Reporter that tees per-benchmark results into the tlsim-bench-v1
 * JSON report while still printing the normal console table.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CollectingReporter(tlsim::bench::BenchReport &report)
        : report_(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            tlsim::bench::BenchReport::Fields fields = {
                {"real_time_ns", run.GetAdjustedRealTime()},
                {"iterations",
                 static_cast<double>(run.iterations)},
            };
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                fields.emplace_back("items_per_second",
                                    it->second.value);
            report_.add(run.benchmark_name(), std::move(fields));
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    tlsim::bench::BenchReport &report_;
};

} // namespace

int
main(int argc, char **argv)
{
    // Split the command line: --benchmark_* flags go to google
    // benchmark untouched; everything else must be a tlsim bench flag
    // (unknown ones are fatal, as everywhere else).
    std::vector<char *> ours{argv[0]};
    std::vector<char *> gbench_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_", 0) == 0)
            gbench_args.push_back(argv[i]);
        else
            ours.push_back(argv[i]);
    }
    tlsim::bench::BenchArgs args = tlsim::bench::parseArgs(
        static_cast<int>(ours.size()), ours.data());

    // --quick: cap measurement time so the full suite stays in CI
    // budget. Explicit --benchmark_min_time on the command line comes
    // later in argv and wins.
    static char quick_flag[] = "--benchmark_min_time=0.05";
    if (args.quick)
        gbench_args.insert(gbench_args.begin() + 1, quick_flag);

    int gargc = static_cast<int>(gbench_args.size());
    benchmark::Initialize(&gargc, gbench_args.data());
    if (benchmark::ReportUnrecognizedArguments(gargc,
                                               gbench_args.data()))
        return 2;

    tlsim::bench::BenchSession session("bench_micro_components",
                                       std::move(args));
    CollectingReporter reporter(session.report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return session.finish();
}
