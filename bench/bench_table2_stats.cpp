/**
 * @file
 * Reproduces Table 2 of the paper: per-benchmark workload statistics
 * (sequential execution time, speculative coverage, thread size,
 * speculative instructions per thread, threads per transaction).
 *
 * Paper reference values (absolute instruction counts depend on the
 * BerkeleyDB cost model; the shape is what must match):
 *   NEW ORDER      62 Mcyc  78%   ~62k insts  ~35k spec   9.7 thr/txn
 *   NEW ORDER 150            ~97%  ~61k        ~35k       99.6
 *   DELIVERY                 63%   ~33k                   ~10
 *   DELIVERY OUTER           99%   ~490k       ~327k      ~10
 *   STOCK LEVEL              ~76%  ~7.5k                  ~20
 *   PAYMENT        26 Mcyc   3%    ~52k        ~32k       2.0
 *   ORDER STATUS             38%   ~8k         ~4k        2.7
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "base/log.h"
#include "bench/benchutil.h"
#include "sim/report.h"

using namespace tlsim;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    setInformEnabled(false);

    std::vector<sim::Table2Row> rows;
    for (tpcc::TxnType type : tpcc::allBenchmarks()) {
        std::fprintf(stderr, "capturing %s...\n",
                     tpcc::txnTypeName(type));
        rows.push_back(
            sim::table2Row(type, bench::configFor(type, args)));
    }
    sim::printTable2(std::cout, rows);
    return 0;
}
