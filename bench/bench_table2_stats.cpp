/**
 * @file
 * Reproduces Table 2 of the paper: per-benchmark workload statistics
 * (sequential execution time, speculative coverage, thread size,
 * speculative instructions per thread, threads per transaction).
 *
 * Paper reference values (absolute instruction counts depend on the
 * BerkeleyDB cost model; the shape is what must match):
 *   NEW ORDER      62 Mcyc  78%   ~62k insts  ~35k spec   9.7 thr/txn
 *   NEW ORDER 150            ~97%  ~61k        ~35k       99.6
 *   DELIVERY                 63%   ~33k                   ~10
 *   DELIVERY OUTER           99%   ~490k       ~327k      ~10
 *   STOCK LEVEL              ~76%  ~7.5k                  ~20
 *   PAYMENT        26 Mcyc   3%    ~52k        ~32k       2.0
 *   ORDER STATUS             38%   ~8k         ~4k        2.7
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "base/log.h"
#include "bench/benchutil.h"
#include "core/resulthash.h"
#include "sim/report.h"

using namespace tlsim;

int
main(int argc, char **argv)
{
    bench::BenchSession session("bench_table2_stats", argc, argv);
    bench::BenchArgs &args = session.args;
    sim::SimExecutor &ex = session.ex;
    bench::BenchReport &report = session.report;

    const auto &benches = tpcc::allBenchmarks();

    // Capture/decode-ahead pipeline: the produce stage captures (or
    // loads from the trace cache) benchmark i+1 while the consume
    // stage replays benchmark i. Captures stay in index order on one
    // thread — synthetic-PC assignment is interning-order dependent —
    // and replay never interns, so the rows are byte-identical to the
    // serial capture-then-replay loop.
    std::vector<sim::ExperimentConfig> cfgs(benches.size());
    std::vector<sim::SharedTraces> traces(benches.size());
    std::vector<sim::Table2Row> rows(benches.size());
    // Per-index probe digests filled from inside the pipeline stages
    // (index-assigned slots, so the pipelined overlap cannot reorder
    // them) and folded after the barrier below.
    std::vector<std::uint64_t> capDigests(benches.size());
    std::vector<std::uint64_t> rowDigests(benches.size());
    bool probing = report.probe().enabled();
    ex.pipeline(
        benches.size(),
        [&](std::size_t i) {
            std::fprintf(stderr, "capturing %s...\n",
                         tpcc::txnTypeName(benches[i]));
            cfgs[i] = bench::configFor(benches[i], args);
            traces[i] = bench::capture(benches[i], cfgs[i], args);
            if (probing) {
                det::Hash h;
                h.u64(det::hashWorkloadTrace(traces[i]->original));
                h.u64(det::hashWorkloadTrace(traces[i]->tls));
                capDigests[i] = h.value();
            }
        },
        [&](std::size_t i) {
            rows[i] = sim::table2Row(benches[i], cfgs[i], *traces[i]);
            if (probing) {
                const sim::Table2Row &r = rows[i];
                det::Hash h;
                h.str(tpcc::txnTypeName(r.type));
                h.f64(r.execMcycles);
                h.f64(r.coverage);
                h.f64(r.threadSizeInsts);
                h.f64(r.specInstsPerThread);
                h.f64(r.threadsPerTxn);
                h.u64(r.epochs);
                rowDigests[i] = h.value();
            }
            // The shared traces are only needed for this row; free
            // them as the pipeline advances to bound live memory at
            // the prefetch window.
            traces[i] = sim::SharedTraces{};
        });
    if (probing) {
        report.probe().stageItems("capture", capDigests);
        report.probe().stageItems("replay", rowDigests);
    }

    sim::printTable2(std::cout, rows);
    for (const auto &r : rows) {
        report.addSimulatedCycles(r.execMcycles * 1e6);
        report.add(tpcc::txnTypeName(r.type),
                   {{"exec_mcycles", r.execMcycles},
                    {"coverage", r.coverage},
                    {"thread_size_insts", r.threadSizeInsts},
                    {"spec_insts_per_thread", r.specInstsPerThread},
                    {"threads_per_txn", r.threadsPerTxn},
                    {"epochs", static_cast<double>(r.epochs)}});
    }
    return session.finish();
}
