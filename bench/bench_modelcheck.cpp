/**
 * @file
 * Model-checker substrate bench (tlsmc, DESIGN.md Section 4.4):
 *
 *  - exhaustively sweeps the CI bounds (2 epochs x length-2 programs
 *    and 3 epochs x length-1 programs, k=2 sub-thread contexts, 2
 *    cache lines) with DPOR and reports explored states per second;
 *  - measures the DPOR reduction (naive vs reduced schedule count) on
 *    three directed low-conflict 3-epoch instances — the same
 *    instances the modelcheck_explorer unit test bounds;
 *  - replays a sample of model schedules bit-for-bit through the real
 *    TlsMachine (bisimulation).
 *
 * The totals land in the report's "modelcheck" JSON block, which
 * tools/check_bench_json.py validates (violations must be 0 and the
 * DPOR reduction at least 5x). Any violation or bisim divergence
 * fails the run outright.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/benchutil.h"
#include "verify/modelcheck/bisim.h"
#include "verify/modelcheck/explorer.h"
#include "verify/modelcheck/model.h"
#include "verify/modelcheck/programs.h"

using namespace tlsim;
namespace mc = tlsim::verify::mc;

namespace {

mc::ModelConfig
bounds(unsigned epochs)
{
    mc::ModelConfig cfg;
    cfg.epochs = epochs;
    cfg.k = 2;
    cfg.lines = 2;
    cfg.spacing = 1;
    return cfg;
}

double
seconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchSession session("bench_modelcheck", argc, argv);
    bench::BenchReport &report = session.report;

    std::uint64_t states = 0;    // transitions executed, all phases
    std::uint64_t schedules = 0; // maximal schedules completed
    unsigned violations = 0;

    // --- Exhaustive sweeps at the CI bounds. -------------------------
    struct SweepBound
    {
        const char *name;
        unsigned epochs;
        unsigned len;
    };
    const SweepBound sweeps[] = {{"sweep_2ep_len2", 2, 2},
                                 {"sweep_3ep_len1", 3, 1}};
    for (const SweepBound &sw : sweeps) {
        mc::ModelConfig cfg = bounds(sw.epochs);
        auto families = mc::programFamilies(sw.epochs, sw.len, cfg.lines,
                                            /*interacting_only=*/true);
        std::vector<mc::ExploreResult> results(families.size());
        auto t0 = std::chrono::steady_clock::now();
        session.ex.parallelFor(families.size(), [&](std::size_t i) {
            mc::ExploreConfig xcfg;
            xcfg.dpor = true;
            results[i] = mc::explore(cfg, families[i], xcfg);
        });
        double secs = seconds(t0);
        std::uint64_t sw_states = 0, sw_scheds = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            sw_states += results[i].stats.transitions;
            sw_scheds += results[i].stats.schedulesCompleted;
            if (!results[i].ok()) {
                ++violations;
                std::fprintf(
                    stderr, "%s: violation in tuple %zu: %s\n", sw.name,
                    i, results[i].violations.front().toString().c_str());
            }
        }
        states += sw_states;
        schedules += sw_scheds;
        std::printf("%s: %zu tuples, %llu states, %llu schedules, "
                    "%.0f states/s\n",
                    sw.name, families.size(),
                    static_cast<unsigned long long>(sw_states),
                    static_cast<unsigned long long>(sw_scheds),
                    secs > 0 ? sw_states / secs : 0.0);
        report.add(sw.name,
                   {{"tuples", static_cast<double>(families.size())},
                    {"states", static_cast<double>(sw_states)},
                    {"schedules", static_cast<double>(sw_scheds)},
                    {"seconds", secs},
                    {"states_per_second",
                     secs > 0 ? sw_states / secs : 0.0}});
    }

    // --- DPOR reduction on directed 3-epoch instances. ---------------
    // Low-conflict tuples: interleavings of independent steps dominate
    // the naive tree, which is exactly where a partial-order reduction
    // must win. (All-conflict tuples are inherently near-naive.)
    using mc::Op;
    using mc::OpKind;
    const Op T{OpKind::Tick, 0}, L0{OpKind::Load, 0},
        S0{OpKind::Store, 0}, L1{OpKind::Load, 1}, S1{OpKind::Store, 1};
    const std::vector<std::vector<mc::Program>> instances = {
        {{S0, T}, {L0}, {L1}},
        {{S0}, {L0}, {L1, S1}},
        {{S0}, {T, L0}, {L1, T}},
    };
    mc::ModelConfig rcfg = bounds(3);
    std::vector<mc::ExploreResult> naive(instances.size());
    std::vector<mc::ExploreResult> reduced(instances.size());
    session.ex.parallelFor(2 * instances.size(), [&](std::size_t i) {
        mc::ExploreConfig xcfg;
        xcfg.dpor = i % 2 != 0;
        (xcfg.dpor ? reduced : naive)[i / 2] =
            mc::explore(rcfg, instances[i / 2], xcfg);
    });
    std::uint64_t naive_scheds = 0, dpor_scheds = 0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
        if (!naive[i].ok() || !reduced[i].ok())
            ++violations;
        naive_scheds += naive[i].stats.schedulesCompleted;
        dpor_scheds += reduced[i].stats.schedulesCompleted;
        states += naive[i].stats.transitions +
                  reduced[i].stats.transitions;
        schedules += reduced[i].stats.schedulesCompleted;
        char name[32];
        std::snprintf(name, sizeof name, "reduction_instance_%zu", i);
        report.add(name,
                   {{"naive_schedules",
                     static_cast<double>(
                         naive[i].stats.schedulesCompleted)},
                    {"dpor_schedules",
                     static_cast<double>(
                         reduced[i].stats.schedulesCompleted)},
                    {"ratio",
                     static_cast<double>(
                         naive[i].stats.schedulesCompleted) /
                         reduced[i].stats.schedulesCompleted}});
    }
    double reduction = dpor_scheds
                           ? static_cast<double>(naive_scheds) /
                                 static_cast<double>(dpor_scheds)
                           : 0.0;
    std::printf("reduction: naive %llu vs dpor %llu schedules "
                "(%.1fx)\n",
                static_cast<unsigned long long>(naive_scheds),
                static_cast<unsigned long long>(dpor_scheds), reduction);

    // --- Model/machine bisimulation sample. --------------------------
    unsigned samples = session.args.quick ? 100 : 500;
    mc::BisimSweep bs =
        mc::sampleBisim(bounds(3), samples, 0x5eed, /*program_len=*/3);
    if (!bs.ok()) {
        ++violations;
        std::fprintf(stderr, "bisim: %u divergences, first: %s\n",
                     bs.failures, bs.firstFailure.c_str());
    }
    states += bs.modelSteps;
    std::printf("bisim: %u samples, %llu model steps, %llu machine "
                "audit checks, %u divergences\n",
                bs.samples,
                static_cast<unsigned long long>(bs.modelSteps),
                static_cast<unsigned long long>(bs.auditChecks),
                bs.failures);
    report.add("bisim", {{"samples", static_cast<double>(bs.samples)},
                         {"model_steps",
                          static_cast<double>(bs.modelSteps)},
                         {"audit_checks",
                          static_cast<double>(bs.auditChecks)},
                         {"divergences",
                          static_cast<double>(bs.failures)}});
    report.addAuditChecks(static_cast<double>(bs.auditChecks));

    report.setModelcheck(static_cast<double>(states),
                         static_cast<double>(schedules), reduction,
                         violations);
    if (report.probe().enabled()) {
        // Timing fields (seconds, states/s) are excluded: the probe
        // digests only the schedule-exploration counts, which must be
        // identical for any --jobs value.
        det::Hash h;
        h.u64(states);
        h.u64(schedules);
        h.f64(reduction);
        h.u64(violations);
        h.u64(naive_scheds);
        h.u64(dpor_scheds);
        h.u64(bs.samples);
        h.u64(bs.modelSteps);
        h.u64(bs.auditChecks);
        h.u64(bs.failures);
        report.probe().stage("aggregate", h.value());
    }
    if (violations) {
        std::fprintf(stderr, "bench_modelcheck: %u violations\n",
                     violations);
        return 1;
    }
    return session.finish();
}
