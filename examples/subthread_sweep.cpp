/**
 * @file
 * Explores the Section 5.1 question — how many sub-threads, how far
 * apart? — on DELIVERY OUTER, the benchmark with the largest threads
 * (hundreds of thousands of instructions), where the answer matters
 * most. Also demonstrates the adaptive spacing policy the paper
 * suggests ("customize the sub-thread size such that the average
 * thread size is divided evenly into sub-threads").
 */

#include <cstdio>
#include <iostream>

#include "sim/experiment.h"
#include "sim/report.h"

using namespace tlsim;

int
main()
{
    sim::ExperimentConfig cfg;
    cfg.scale = tpcc::TpccConfig::tiny();
    cfg.scale.items = 4000;
    cfg.scale.customersPerDistrict = 300;
    cfg.scale.ordersPerDistrict = 300;
    cfg.scale.firstNewOrder = 151;
    cfg.txns = 6;
    cfg.warmupTxns = 1;

    std::cout << "Sub-thread count/spacing sweep on DELIVERY OUTER\n\n";

    sim::BenchmarkTraces traces =
        sim::captureTraces(tpcc::TxnType::DeliveryOuter, cfg);
    RunResult seq = sim::runBar(sim::Bar::Sequential, traces, cfg);

    std::vector<sim::SweepPoint> points;
    for (unsigned k : {2u, 4u, 8u}) {
        for (std::uint64_t s :
             {1000ull, 5000ull, 25000ull, 100000ull}) {
            MachineConfig mc = cfg.machine;
            mc.tls.subthreadsPerThread = k;
            mc.tls.subthreadSpacing = s;
            TlsMachine m(mc);
            points.push_back(
                {k, s, m.run(traces.tls, ExecMode::Tls,
                             cfg.warmupTxns)});
        }
    }
    sim::printFigure6(std::cout, "DELIVERY OUTER", points,
                      seq.makespan);

    // The Section 5.1 suggestion: adapt spacing to the thread size.
    MachineConfig adaptive = cfg.machine;
    adaptive.tls.adaptiveSpacing = true;
    TlsMachine m(adaptive);
    RunResult r = m.run(traces.tls, ExecMode::Tls, cfg.warmupTxns);
    std::printf("adaptive spacing (size/k): normalized time %.3f "
                "(%llu sub-threads started)\n",
                static_cast<double>(r.makespan) /
                    static_cast<double>(seq.makespan),
                static_cast<unsigned long long>(r.subthreadsStarted));
    return 0;
}
