/**
 * @file
 * The paper's Section 3 workflow, end to end: treat parallelization as
 * performance tuning.
 *
 *   1. Mark the NEW ORDER order-line loop parallel and run it on the
 *      TLS machine with the *unmodified* database. Speculation fails
 *      constantly; the hardware dependence profiler names the
 *      load/store pairs that caused the most failed cycles (spin
 *      latches, the log's LSN allocator, buffer-pool LRU updates).
 *   2. Apply the tuned database (escaped latches, per-epoch log
 *      buffers, no shared LRU) and re-run: the profiler now shows only
 *      the real data dependences (B-tree leaf inserts), and the
 *      speedup appears.
 *
 * Sub-threads are what make each step of this loop cheap: every
 * removed dependence improves performance instead of merely delaying
 * the inevitable full-thread rewind (paper Figure 2).
 */

#include <iostream>

#include "core/machine.h"
#include "sim/experiment.h"
#include "tpcc/tpcc.h"

using namespace tlsim;

namespace {

struct StepResult
{
    RunResult tls;
    Cycle seqMakespan;
    std::string profile;
};

StepResult
runStep(bool tuned, const tpcc::TpccConfig &scale)
{
    tpcc::CaptureOptions opts;
    opts.scale = scale;
    opts.txns = 8;
    opts.parallelMode = true;
    opts.tlsBuild = tuned;
    WorkloadTrace parallel_trace =
        tpcc::captureBenchmark(tpcc::TxnType::NewOrder, opts);

    tpcc::CaptureOptions seq_opts = opts;
    seq_opts.parallelMode = false;
    seq_opts.tlsBuild = false;
    WorkloadTrace seq_trace =
        tpcc::captureBenchmark(tpcc::TxnType::NewOrder, seq_opts);

    MachineConfig cfg; // paper BASELINE: 8 sub-threads @ 5k insts
    TlsMachine machine(cfg);
    StepResult out;
    out.seqMakespan =
        machine.run(seq_trace, ExecMode::Serial, 2).makespan;
    out.tls = machine.run(parallel_trace, ExecMode::Tls, 2);
    out.profile = machine.profiler().reportText(8);
    return out;
}

void
print(const char *title, const StepResult &r)
{
    std::cout << "--- " << title << " ---\n";
    std::cout << "speedup over sequential: "
              << static_cast<double>(r.seqMakespan) /
                     static_cast<double>(r.tls.makespan)
              << "x\n";
    std::cout << "violations: " << r.tls.primaryViolations
              << " primary / " << r.tls.secondaryViolations
              << " secondary; failed cycles "
              << r.tls.total[Cat::Failed] << "\n";
    std::cout << "profiler (top offending dependences):\n"
              << r.profile << "\n";
}

} // namespace

int
main()
{
    tpcc::TpccConfig scale = tpcc::TpccConfig::tiny();
    scale.items = 4000;
    scale.customersPerDistrict = 300;
    scale.ordersPerDistrict = 300;
    scale.firstNewOrder = 151;

    std::cout << "Iterative feedback-driven parallelization of NEW "
                 "ORDER (paper Section 3)\n\n";

    StepResult naive = runStep(false, scale);
    print("step 1: unmodified database, loop marked parallel", naive);

    StepResult tuned = runStep(true, scale);
    print("step 2: tuned database (escaped latches, per-epoch log "
          "buffers)",
          tuned);

    std::cout << "Tuning removed "
              << (naive.tls.primaryViolations +
                  naive.tls.secondaryViolations) -
                     (tuned.tls.primaryViolations +
                      tuned.tls.secondaryViolations)
              << " violations per run; the remaining pairs above are "
                 "the true\ndata dependences (B-tree leaf appends, "
                 "stock updates) that sub-threads tolerate.\n";
    return 0;
}
