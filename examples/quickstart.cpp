/**
 * @file
 * Quickstart: capture a small TPC-C NEW ORDER workload, run it through
 * the simulated CMP in every Figure-5 configuration, and print the
 * normalized breakdown — the whole public API in ~30 lines.
 */

#include <iostream>

#include "sim/experiment.h"
#include "sim/report.h"

using namespace tlsim;

int
main()
{
    // A reduced-scale TPC-C database so the quickstart finishes in
    // seconds; the bench/ binaries use the full single-warehouse scale.
    sim::ExperimentConfig cfg;
    cfg.scale = tpcc::TpccConfig::tiny();
    cfg.scale.items = 2000;
    cfg.scale.customersPerDistrict = 120;
    cfg.scale.ordersPerDistrict = 120;
    cfg.scale.firstNewOrder = 61;
    cfg.txns = 8;
    cfg.warmupTxns = 2;

    std::cout << "Simulated machine (paper Table 1):\n";
    cfg.machine.print(std::cout);
    std::cout << "\n";

    sim::Figure5Row row = sim::runFigure5(tpcc::TxnType::NewOrder, cfg);
    sim::printFigure5Row(std::cout, row);

    std::cout << "NEW ORDER speedup with sub-threads: "
              << row.speedup(sim::Bar::Baseline) << "x (vs "
              << row.speedup(sim::Bar::NoSubthread)
              << "x without)\n";
    return 0;
}
