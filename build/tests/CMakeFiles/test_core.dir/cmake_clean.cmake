file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/machine_ablation_test.cc.o"
  "CMakeFiles/test_core.dir/core/machine_ablation_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/machine_latch_test.cc.o"
  "CMakeFiles/test_core.dir/core/machine_latch_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/machine_property_test.cc.o"
  "CMakeFiles/test_core.dir/core/machine_property_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/machine_test.cc.o"
  "CMakeFiles/test_core.dir/core/machine_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/profiler_test.cc.o"
  "CMakeFiles/test_core.dir/core/profiler_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/site_test.cc.o"
  "CMakeFiles/test_core.dir/core/site_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/specstate_test.cc.o"
  "CMakeFiles/test_core.dir/core/specstate_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/tracer_chunk_test.cc.o"
  "CMakeFiles/test_core.dir/core/tracer_chunk_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/tracer_test.cc.o"
  "CMakeFiles/test_core.dir/core/tracer_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
