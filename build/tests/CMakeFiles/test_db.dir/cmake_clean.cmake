file(REMOVE_RECURSE
  "CMakeFiles/test_db.dir/db/btree_param_test.cc.o"
  "CMakeFiles/test_db.dir/db/btree_param_test.cc.o.d"
  "CMakeFiles/test_db.dir/db/btree_test.cc.o"
  "CMakeFiles/test_db.dir/db/btree_test.cc.o.d"
  "CMakeFiles/test_db.dir/db/bufferpool_test.cc.o"
  "CMakeFiles/test_db.dir/db/bufferpool_test.cc.o.d"
  "CMakeFiles/test_db.dir/db/db_test.cc.o"
  "CMakeFiles/test_db.dir/db/db_test.cc.o.d"
  "CMakeFiles/test_db.dir/db/keys_test.cc.o"
  "CMakeFiles/test_db.dir/db/keys_test.cc.o.d"
  "CMakeFiles/test_db.dir/db/page_test.cc.o"
  "CMakeFiles/test_db.dir/db/page_test.cc.o.d"
  "CMakeFiles/test_db.dir/db/recovery_test.cc.o"
  "CMakeFiles/test_db.dir/db/recovery_test.cc.o.d"
  "test_db"
  "test_db.pdb"
  "test_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
