file(REMOVE_RECURSE
  "libtlsim_core.a"
)
