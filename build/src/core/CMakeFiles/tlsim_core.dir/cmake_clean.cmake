file(REMOVE_RECURSE
  "CMakeFiles/tlsim_core.dir/machine.cc.o"
  "CMakeFiles/tlsim_core.dir/machine.cc.o.d"
  "CMakeFiles/tlsim_core.dir/profiler.cc.o"
  "CMakeFiles/tlsim_core.dir/profiler.cc.o.d"
  "CMakeFiles/tlsim_core.dir/specstate.cc.o"
  "CMakeFiles/tlsim_core.dir/specstate.cc.o.d"
  "libtlsim_core.a"
  "libtlsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
