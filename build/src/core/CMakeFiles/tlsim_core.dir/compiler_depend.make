# Empty compiler generated dependencies file for tlsim_core.
# This may be replaced when dependencies are built.
