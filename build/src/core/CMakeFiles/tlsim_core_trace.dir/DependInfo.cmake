
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/site.cc" "src/core/CMakeFiles/tlsim_core_trace.dir/site.cc.o" "gcc" "src/core/CMakeFiles/tlsim_core_trace.dir/site.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/tlsim_core_trace.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/tlsim_core_trace.dir/trace.cc.o.d"
  "/root/repo/src/core/tracer.cc" "src/core/CMakeFiles/tlsim_core_trace.dir/tracer.cc.o" "gcc" "src/core/CMakeFiles/tlsim_core_trace.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/tlsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
