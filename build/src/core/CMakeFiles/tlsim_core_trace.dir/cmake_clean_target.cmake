file(REMOVE_RECURSE
  "libtlsim_core_trace.a"
)
