# Empty dependencies file for tlsim_core_trace.
# This may be replaced when dependencies are built.
