file(REMOVE_RECURSE
  "CMakeFiles/tlsim_core_trace.dir/site.cc.o"
  "CMakeFiles/tlsim_core_trace.dir/site.cc.o.d"
  "CMakeFiles/tlsim_core_trace.dir/trace.cc.o"
  "CMakeFiles/tlsim_core_trace.dir/trace.cc.o.d"
  "CMakeFiles/tlsim_core_trace.dir/tracer.cc.o"
  "CMakeFiles/tlsim_core_trace.dir/tracer.cc.o.d"
  "libtlsim_core_trace.a"
  "libtlsim_core_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_core_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
