file(REMOVE_RECURSE
  "CMakeFiles/tlsim_tpcc.dir/delivery.cc.o"
  "CMakeFiles/tlsim_tpcc.dir/delivery.cc.o.d"
  "CMakeFiles/tlsim_tpcc.dir/input.cc.o"
  "CMakeFiles/tlsim_tpcc.dir/input.cc.o.d"
  "CMakeFiles/tlsim_tpcc.dir/neworder.cc.o"
  "CMakeFiles/tlsim_tpcc.dir/neworder.cc.o.d"
  "CMakeFiles/tlsim_tpcc.dir/orderstatus.cc.o"
  "CMakeFiles/tlsim_tpcc.dir/orderstatus.cc.o.d"
  "CMakeFiles/tlsim_tpcc.dir/payment.cc.o"
  "CMakeFiles/tlsim_tpcc.dir/payment.cc.o.d"
  "CMakeFiles/tlsim_tpcc.dir/stocklevel.cc.o"
  "CMakeFiles/tlsim_tpcc.dir/stocklevel.cc.o.d"
  "CMakeFiles/tlsim_tpcc.dir/tpcc.cc.o"
  "CMakeFiles/tlsim_tpcc.dir/tpcc.cc.o.d"
  "libtlsim_tpcc.a"
  "libtlsim_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
