file(REMOVE_RECURSE
  "libtlsim_tpcc.a"
)
