
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpcc/delivery.cc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/delivery.cc.o" "gcc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/delivery.cc.o.d"
  "/root/repo/src/tpcc/input.cc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/input.cc.o" "gcc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/input.cc.o.d"
  "/root/repo/src/tpcc/neworder.cc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/neworder.cc.o" "gcc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/neworder.cc.o.d"
  "/root/repo/src/tpcc/orderstatus.cc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/orderstatus.cc.o" "gcc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/orderstatus.cc.o.d"
  "/root/repo/src/tpcc/payment.cc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/payment.cc.o" "gcc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/payment.cc.o.d"
  "/root/repo/src/tpcc/stocklevel.cc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/stocklevel.cc.o" "gcc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/stocklevel.cc.o.d"
  "/root/repo/src/tpcc/tpcc.cc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/tpcc.cc.o" "gcc" "src/tpcc/CMakeFiles/tlsim_tpcc.dir/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/tlsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tlsim_core_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/tlsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
