# Empty compiler generated dependencies file for tlsim_tpcc.
# This may be replaced when dependencies are built.
