file(REMOVE_RECURSE
  "CMakeFiles/tlsim_sim.dir/experiment.cc.o"
  "CMakeFiles/tlsim_sim.dir/experiment.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/report.cc.o"
  "CMakeFiles/tlsim_sim.dir/report.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/traceio.cc.o"
  "CMakeFiles/tlsim_sim.dir/traceio.cc.o.d"
  "libtlsim_sim.a"
  "libtlsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
