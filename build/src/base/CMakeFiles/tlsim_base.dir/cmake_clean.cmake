file(REMOVE_RECURSE
  "CMakeFiles/tlsim_base.dir/config.cc.o"
  "CMakeFiles/tlsim_base.dir/config.cc.o.d"
  "CMakeFiles/tlsim_base.dir/log.cc.o"
  "CMakeFiles/tlsim_base.dir/log.cc.o.d"
  "CMakeFiles/tlsim_base.dir/stats.cc.o"
  "CMakeFiles/tlsim_base.dir/stats.cc.o.d"
  "libtlsim_base.a"
  "libtlsim_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
