file(REMOVE_RECURSE
  "libtlsim_base.a"
)
