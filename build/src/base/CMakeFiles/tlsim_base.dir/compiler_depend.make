# Empty compiler generated dependencies file for tlsim_base.
# This may be replaced when dependencies are built.
