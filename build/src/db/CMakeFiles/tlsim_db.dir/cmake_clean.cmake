file(REMOVE_RECURSE
  "CMakeFiles/tlsim_db.dir/btree.cc.o"
  "CMakeFiles/tlsim_db.dir/btree.cc.o.d"
  "CMakeFiles/tlsim_db.dir/bufferpool.cc.o"
  "CMakeFiles/tlsim_db.dir/bufferpool.cc.o.d"
  "CMakeFiles/tlsim_db.dir/db.cc.o"
  "CMakeFiles/tlsim_db.dir/db.cc.o.d"
  "CMakeFiles/tlsim_db.dir/lockmgr.cc.o"
  "CMakeFiles/tlsim_db.dir/lockmgr.cc.o.d"
  "CMakeFiles/tlsim_db.dir/log.cc.o"
  "CMakeFiles/tlsim_db.dir/log.cc.o.d"
  "CMakeFiles/tlsim_db.dir/page.cc.o"
  "CMakeFiles/tlsim_db.dir/page.cc.o.d"
  "CMakeFiles/tlsim_db.dir/recovery.cc.o"
  "CMakeFiles/tlsim_db.dir/recovery.cc.o.d"
  "libtlsim_db.a"
  "libtlsim_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
