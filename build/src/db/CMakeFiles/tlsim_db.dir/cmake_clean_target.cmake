file(REMOVE_RECURSE
  "libtlsim_db.a"
)
