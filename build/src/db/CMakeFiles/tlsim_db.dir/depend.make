# Empty dependencies file for tlsim_db.
# This may be replaced when dependencies are built.
