
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/btree.cc" "src/db/CMakeFiles/tlsim_db.dir/btree.cc.o" "gcc" "src/db/CMakeFiles/tlsim_db.dir/btree.cc.o.d"
  "/root/repo/src/db/bufferpool.cc" "src/db/CMakeFiles/tlsim_db.dir/bufferpool.cc.o" "gcc" "src/db/CMakeFiles/tlsim_db.dir/bufferpool.cc.o.d"
  "/root/repo/src/db/db.cc" "src/db/CMakeFiles/tlsim_db.dir/db.cc.o" "gcc" "src/db/CMakeFiles/tlsim_db.dir/db.cc.o.d"
  "/root/repo/src/db/lockmgr.cc" "src/db/CMakeFiles/tlsim_db.dir/lockmgr.cc.o" "gcc" "src/db/CMakeFiles/tlsim_db.dir/lockmgr.cc.o.d"
  "/root/repo/src/db/log.cc" "src/db/CMakeFiles/tlsim_db.dir/log.cc.o" "gcc" "src/db/CMakeFiles/tlsim_db.dir/log.cc.o.d"
  "/root/repo/src/db/page.cc" "src/db/CMakeFiles/tlsim_db.dir/page.cc.o" "gcc" "src/db/CMakeFiles/tlsim_db.dir/page.cc.o.d"
  "/root/repo/src/db/recovery.cc" "src/db/CMakeFiles/tlsim_db.dir/recovery.cc.o" "gcc" "src/db/CMakeFiles/tlsim_db.dir/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tlsim_core_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/tlsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
