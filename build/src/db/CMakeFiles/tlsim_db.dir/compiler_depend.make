# Empty compiler generated dependencies file for tlsim_db.
# This may be replaced when dependencies are built.
