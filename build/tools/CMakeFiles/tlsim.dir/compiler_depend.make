# Empty compiler generated dependencies file for tlsim.
# This may be replaced when dependencies are built.
