file(REMOVE_RECURSE
  "CMakeFiles/bench_mechanism_micro.dir/bench_mechanism_micro.cpp.o"
  "CMakeFiles/bench_mechanism_micro.dir/bench_mechanism_micro.cpp.o.d"
  "bench_mechanism_micro"
  "bench_mechanism_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mechanism_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
