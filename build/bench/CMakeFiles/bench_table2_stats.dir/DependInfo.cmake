
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_stats.cpp" "bench/CMakeFiles/bench_table2_stats.dir/bench_table2_stats.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_stats.dir/bench_table2_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tlsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tlsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tlsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/tlsim_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/tlsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tlsim_core_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/tlsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
