file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_overall.dir/bench_figure5_overall.cpp.o"
  "CMakeFiles/bench_figure5_overall.dir/bench_figure5_overall.cpp.o.d"
  "bench_figure5_overall"
  "bench_figure5_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
