file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_sweep.dir/bench_figure6_sweep.cpp.o"
  "CMakeFiles/bench_figure6_sweep.dir/bench_figure6_sweep.cpp.o.d"
  "bench_figure6_sweep"
  "bench_figure6_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
