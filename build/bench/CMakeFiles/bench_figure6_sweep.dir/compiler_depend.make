# Empty compiler generated dependencies file for bench_figure6_sweep.
# This may be replaced when dependencies are built.
