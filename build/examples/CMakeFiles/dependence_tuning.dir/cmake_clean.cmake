file(REMOVE_RECURSE
  "CMakeFiles/dependence_tuning.dir/dependence_tuning.cpp.o"
  "CMakeFiles/dependence_tuning.dir/dependence_tuning.cpp.o.d"
  "dependence_tuning"
  "dependence_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependence_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
