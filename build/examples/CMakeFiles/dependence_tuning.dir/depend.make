# Empty dependencies file for dependence_tuning.
# This may be replaced when dependencies are built.
