file(REMOVE_RECURSE
  "CMakeFiles/subthread_sweep.dir/subthread_sweep.cpp.o"
  "CMakeFiles/subthread_sweep.dir/subthread_sweep.cpp.o.d"
  "subthread_sweep"
  "subthread_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subthread_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
