# Empty dependencies file for subthread_sweep.
# This may be replaced when dependencies are built.
