/**
 * @file
 * tlscheck — offline trace checker and simulator cross-validator.
 *
 * Mode 1, raw trace:
 *   tlscheck --trace=FILE [--idx=FILE] [--line-bytes=N]
 * Replays the captured trace through the independent happens-before
 * checker (src/verify/checker) and diffs its per-record conflict /
 * covered-load classification against a TraceIndex — the one loaded
 * from --idx if given, else one built in-process. Any disagreement is
 * a hard error: a mis-classified line would make the simulator skip
 * violation scans.
 *
 * Mode 2, benchmark:
 *   tlscheck --benchmark=NAME [--quick] [--txns=N] [--warmup=N]
 *            [--trace-cache=DIR] [--audit=off|commit|full]
 * Captures (or reloads) the benchmark's traces, checks both against
 * their shared indexes, then runs the full TLS simulation and
 * validates the RunResult against the checker's ground truth: commit
 * order serializable, violation bookkeeping consistent, and every
 * violated line independently proven a RAW candidate. --audit
 * additionally attaches the runtime invariant auditor to the
 * simulation.
 *
 * Exit status: 0 all checks passed, 1 any mismatch.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "base/log.h"
#include "core/machine.h"
#include "core/traceindex.h"
#include "sim/experiment.h"
#include "sim/tracecache.h"
#include "sim/traceio.h"
#include "tpcc/tpcc.h"
#include "verify/auditor.h"
#include "verify/checker.h"

using namespace tlsim;

namespace {

struct Args
{
    std::map<std::string, std::string> kv;
    bool has(const std::string &k) const { return kv.count(k) > 0; }

    std::string
    str(const std::string &k, const std::string &dflt = "") const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }

    std::uint64_t
    num(const std::string &k, std::uint64_t dflt) const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : std::stoull(it->second);
    }
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: tlscheck --trace=FILE [--idx=FILE] [--line-bytes=N]\n"
        "       tlscheck --benchmark=NAME [--quick] [--txns=N]\n"
        "                [--warmup=N] [--trace-cache=DIR]\n"
        "                [--audit=off|commit|full]\n");
    return 2;
}

int
report(const char *what, const std::vector<std::string> &errors)
{
    if (errors.empty()) {
        std::printf("tlscheck: %s OK\n", what);
        return 0;
    }
    std::printf("tlscheck: %s FAILED (%zu mismatches)\n", what,
                errors.size());
    for (const std::string &e : errors)
        std::printf("  %s\n", e.c_str());
    return 1;
}

void
printSummary(const char *name, const verify::CheckResult &chk)
{
    std::printf("%s: %llu parallel epochs, %llu exposed loads, "
                "lines %llu private / %llu read-shared / %llu "
                "conflict (%zu RAW candidates)\n",
                name,
                static_cast<unsigned long long>(chk.parallelEpochs),
                static_cast<unsigned long long>(chk.exposedLoads),
                static_cast<unsigned long long>(chk.epochPrivate),
                static_cast<unsigned long long>(chk.readShared),
                static_cast<unsigned long long>(chk.conflict),
                chk.rawLines.size());
}

int
checkTraceFile(const Args &a)
{
    WorkloadTrace w;
    if (!sim::loadTraceFile(a.str("trace"), &w))
        fatal("not a tlsim trace file: %s", a.str("trace").c_str());
    auto line_bytes =
        static_cast<unsigned>(a.num("line-bytes", MemConfig{}.lineBytes));

    verify::CheckResult chk = verify::checkTrace(w, line_bytes);
    printSummary(a.str("trace").c_str(), chk);

    std::unique_ptr<TraceIndex> owned;
    if (a.has("idx")) {
        owned = TraceIndex::loadFile(a.str("idx"), w, line_bytes);
        if (!owned)
            fatal("cannot load trace index %s against this trace",
                  a.str("idx").c_str());
    } else {
        owned = std::make_unique<TraceIndex>(w, line_bytes);
    }
    return report("index diff",
                  verify::diffAgainstIndex(chk, *owned, w));
}

tpcc::TxnType
benchmarkByName(const std::string &name)
{
    std::string spaced = name;
    for (char &c : spaced)
        if (c == '_')
            c = ' ';
    for (tpcc::TxnType t : tpcc::allBenchmarks())
        if (spaced == tpcc::txnTypeName(t))
            return t;
    fatal("unknown benchmark '%s'", name.c_str());
}

int
checkBenchmark(const Args &a)
{
    tpcc::TxnType type = benchmarkByName(a.str("benchmark"));

    sim::ExperimentConfig cfg;
    if (a.has("quick")) {
        cfg.scale = tpcc::TpccConfig::tiny();
        cfg.scale.items = 2000;
        cfg.scale.customersPerDistrict = 150;
        cfg.scale.ordersPerDistrict = 150;
        cfg.scale.firstNewOrder = 76;
        cfg.txns = 8;
    }
    cfg.txns = static_cast<unsigned>(a.num("txns", cfg.txns));
    cfg.warmupTxns = static_cast<unsigned>(
        a.num("warmup", std::min(2u, cfg.txns / 2)));
    cfg.machine.tls.auditLevel =
        parseAuditLevel(a.str("audit", "off"));

    std::fprintf(stderr, "tlscheck: capturing %s...\n",
                 tpcc::txnTypeName(type));
    sim::SharedTraces traces =
        sim::captureTracesShared(type, cfg, a.str("trace-cache"));
    unsigned line_bytes = cfg.machine.mem.lineBytes;

    int rc = 0;

    // Independent classification of both captures, diffed against the
    // indexes the simulator will trust.
    verify::CheckResult chk_orig =
        verify::checkTrace(traces->original, line_bytes);
    printSummary("original trace", chk_orig);
    rc |= report("original index diff",
                 verify::diffAgainstIndex(chk_orig,
                                          *traces->originalIndex,
                                          traces->original));

    verify::CheckResult chk_tls =
        verify::checkTrace(traces->tls, line_bytes);
    printSummary("tls trace", chk_tls);
    rc |= report("tls index diff",
                 verify::diffAgainstIndex(chk_tls, *traces->tlsIndex,
                                          traces->tls));

    // Full TLS simulation (auditor attached when --audit is not off),
    // validated against the checker's ground truth.
    TlsMachine m(cfg.machine);
    RunResult r =
        verify::runWithAudit(m, traces->tls, ExecMode::Tls,
                             cfg.warmupTxns, traces->tlsIndex.get());
    std::printf("simulation: %llu epochs, %llu primary violations, "
                "%llu audit checks\n",
                static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.primaryViolations),
                static_cast<unsigned long long>(r.auditChecks));
    rc |= report("run diff", verify::diffAgainstRun(chk_tls, r));
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    Args a;
    for (int i = 1; i < argc; ++i) {
        std::string s = argv[i];
        if (s.rfind("--", 0) != 0)
            return usage();
        s = s.substr(2);
        auto eq = s.find('=');
        if (eq == std::string::npos)
            a.kv[s] = "1";
        else
            a.kv[s.substr(0, eq)] = s.substr(eq + 1);
    }
    if (a.has("trace"))
        return checkTraceFile(a);
    if (a.has("benchmark"))
        return checkBenchmark(a);
    return usage();
}
