#!/usr/bin/env python3
"""Validate a bench JSON report against the tlsim-bench-v1 schema.

Usage: check_bench_json.py FILE [FILE...]

Every bench binary writes this schema when invoked with --json=FILE:

    {
      "schema": "tlsim-bench-v1",
      "bench": "<binary name>",
      "quick": true|false,
      "jobs": <int >= 1>,
      "wall_seconds": <number >= 0>,
      "simulated_cycles": <number >= 0>,
      "audit": {                      # optional; present iff --audit
        "level": "commit"|"full",
        "invariants_checked": <number >= 0>,
        "violations": 0               # auditor aborts on violation
      },
      "modelcheck": {                 # optional; bench_modelcheck only
        "states_explored": <number > 0>,
        "schedules": <number > 0>,
        "dpor_reduction": <number >= 5>,
        "violations": 0               # sweeps must be clean
      },
      "critpath": {                   # optional; --prune=oracle sweeps
        "predicted_makespan": <number > 0>,   # calibrated, all points
        "band_error": <number in [0, 1)>,     # worst observed residual
        "points_total": <number > 0>,
        "points_simulated": <number >= 1>     # must prune >= 2x
      },
      "determinism": {                # optional; present iff --det-probe
        "jobs_invariant": true,       # fwd/rev commutative-fold self-check
        "stages": {                   # canonical result-stream digests
          "<stage>": "<16 hex>", ...  # capture/replay/aggregate/serialize
        }
      },
      "staticanalysis": {             # optional; tlslint/tlsa/tlsdet --json
        "engine": "libclang"|"lex",
        "checks_run": <int >= 4>,     # the tool's full check set ran
        "files_scanned": <int > 0>,
        "violations": 0,              # the tree must be clean
        "suppressions": <int >= 0>,   # reasoned allows, informational
        "suppressions_by_check": {    # census; must sum to the count
          "<check>": <int >= 0>, ...
        }
      },                              # per-pass results[] entries must
                                      # each report violations == 0
      "lifetime": {                   # optional; tlslife --json
        "engine": "libclang"|"lex",
        "checks_run": <int >= 4>,     # P1..P4 all ran
        "files_scanned": <int > 0>,
        "pooled_types": <int >= 0>,   # poolreset.txt census
        "persistent_fields": <int >= 0>,
        "views": <int >= 0>,
        "violations": 0,              # the tree must be clean
        "suppressions": <int >= 0>,
        "suppressions_by_check": { "<check>": <int >= 0>, ... }
      },                              # per-pass results[] entries must
                                      # each report violations == 0
      "replay": {                     # optional; absent only in
        "simd": "avx2"|"scalar",      # pre-replay-block reports
        "<counter>": <number >= 0>,   # the replay.* counter group
        ...                           # (runs, epochs, records,
      },                              # runPoolHits, runPoolAllocs, ...)
      "results": [
        {"name": "<point name>", "<metric>": <number>, ...},
        ...
      ]
    }

Exit status 0 if every file validates, 1 otherwise (with one line per
problem on stderr). Used by the `bench-smoke` ctest label.
"""

import json
import numbers
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def is_num(v):
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def check_result(path, i, entry):
    if not isinstance(entry, dict):
        return fail(path, f"results[{i}] is not an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        return fail(path, f"results[{i}] missing non-empty 'name'")
    metrics = {k: v for k, v in entry.items() if k != "name"}
    if not metrics:
        return fail(path, f"results[{i}] ({name!r}) has no metrics")
    ok = True
    for k, v in metrics.items():
        if not is_num(v):
            ok = fail(path, f"results[{i}] ({name!r}) metric {k!r} "
                            f"is not a number: {v!r}")
    return ok


def check_audit(path, audit):
    if not isinstance(audit, dict):
        return fail(path, "'audit' is not an object")
    ok = True
    level = audit.get("level")
    if level not in ("commit", "full"):
        ok = fail(path, f"audit 'level' must be 'commit' or 'full', "
                        f"got {level!r}")
    checked = audit.get("invariants_checked")
    if not is_num(checked) or checked < 0:
        ok = fail(path, "audit 'invariants_checked' must be a number "
                        f">= 0, got {checked!r}")
    violations = audit.get("violations")
    if violations != 0 or isinstance(violations, bool):
        ok = fail(path, f"audit 'violations' must be 0, "
                        f"got {violations!r}")
    return ok


def check_modelcheck(path, mc):
    if not isinstance(mc, dict):
        return fail(path, "'modelcheck' is not an object")
    ok = True
    for key in ("states_explored", "schedules"):
        v = mc.get(key)
        if not is_num(v) or v <= 0:
            ok = fail(path, f"modelcheck {key!r} must be a number > 0, "
                            f"got {v!r}")
    reduction = mc.get("dpor_reduction")
    if not is_num(reduction) or reduction < 5:
        # Acceptance bound: DPOR must prune at least 5x vs the naive
        # enumeration on the reported reduction instances.
        ok = fail(path, "modelcheck 'dpor_reduction' must be a number "
                        f">= 5, got {reduction!r}")
    violations = mc.get("violations")
    if violations != 0 or isinstance(violations, bool):
        ok = fail(path, f"modelcheck 'violations' must be 0, "
                        f"got {violations!r}")
    return ok


def check_critpath(path, cp):
    if not isinstance(cp, dict):
        return fail(path, "'critpath' is not an object")
    ok = True
    predicted = cp.get("predicted_makespan")
    if not is_num(predicted) or predicted <= 0:
        ok = fail(path, "critpath 'predicted_makespan' must be a "
                        f"number > 0, got {predicted!r}")
    band = cp.get("band_error")
    if not is_num(band) or band < 0 or band >= 1:
        # The oracle is only useful while calibrated predictions and
        # simulations agree to well under the makespan itself; the
        # tight accuracy gate is the `critpath` ctest label at its
        # stated configuration (EXPERIMENTS.md), this bound catches a
        # predictor that has come off the rails entirely.
        ok = fail(path, "critpath 'band_error' must be a number in "
                        f"[0, 1), got {band!r}")
    total = cp.get("points_total")
    simulated = cp.get("points_simulated")
    if not is_num(total) or total <= 0:
        ok = fail(path, "critpath 'points_total' must be a number "
                        f"> 0, got {total!r}")
    if not is_num(simulated) or simulated < 1:
        ok = fail(path, "critpath 'points_simulated' must be a number "
                        f">= 1, got {simulated!r}")
    if is_num(total) and is_num(simulated) and 2 * simulated > total:
        # The pruned sweep's reason to exist: at most half the grid
        # may have been simulated.
        ok = fail(path, "critpath pruning must simulate at most half "
                        f"the grid: {simulated!r} of {total!r}")
    return ok


def check_determinism(path, det):
    if not isinstance(det, dict):
        return fail(path, "'determinism' is not an object")
    ok = True
    inv = det.get("jobs_invariant")
    if inv is not True:
        # The probe self-checks combineUnordered's order-insensitivity
        # on the real per-item digests; false means a shard merge in
        # this very run was order-sensitive.
        ok = fail(path, "determinism 'jobs_invariant' must be true, "
                        f"got {inv!r}")
    stages = det.get("stages")
    if not isinstance(stages, dict) or not stages:
        return fail(path, "determinism 'stages' must be a non-empty "
                          f"object, got {stages!r}")
    for name, digest in stages.items():
        if not isinstance(name, str) or not name:
            ok = fail(path, f"determinism stage name {name!r} must be "
                            "a non-empty string")
        if not isinstance(digest, str) or len(digest) != 16 or \
                not all(c in "0123456789abcdef" for c in digest):
            ok = fail(path, f"determinism stage {name!r} digest must "
                            f"be 16 lowercase hex digits, got "
                            f"{digest!r}")
    return ok


def check_staticanalysis(path, sa):
    if not isinstance(sa, dict):
        return fail(path, "'staticanalysis' is not an object")
    ok = True
    engine = sa.get("engine")
    if engine not in ("libclang", "lex"):
        ok = fail(path, "staticanalysis 'engine' must be 'libclang' "
                        f"or 'lex', got {engine!r}")
    checks = sa.get("checks_run")
    if not isinstance(checks, int) or isinstance(checks, bool) \
            or checks < 4:
        # All four repo-invariant checks (T1..T4) must have run; a
        # report from a --check subset does not count as a clean tree.
        ok = fail(path, "staticanalysis 'checks_run' must be an "
                        f"integer >= 4, got {checks!r}")
    scanned = sa.get("files_scanned")
    if not isinstance(scanned, int) or isinstance(scanned, bool) \
            or scanned <= 0:
        ok = fail(path, "staticanalysis 'files_scanned' must be an "
                        f"integer > 0, got {scanned!r}")
    violations = sa.get("violations")
    if violations != 0 or isinstance(violations, bool):
        ok = fail(path, "staticanalysis 'violations' must be 0, "
                        f"got {violations!r}")
    supp = sa.get("suppressions")
    if not isinstance(supp, int) or isinstance(supp, bool) or supp < 0:
        ok = fail(path, "staticanalysis 'suppressions' must be an "
                        f"integer >= 0, got {supp!r}")
    census = sa.get("suppressions_by_check")
    if not isinstance(census, dict):
        ok = fail(path, "staticanalysis 'suppressions_by_check' must "
                        f"be an object, got {census!r}")
    else:
        good = True
        for k, v in census.items():
            if not isinstance(k, str) or not k or \
                    not isinstance(v, int) or isinstance(v, bool) or \
                    v < 0:
                good = ok = fail(
                    path, "staticanalysis suppression census entry "
                          f"{k!r}: {v!r} must map a check id to an "
                          "integer >= 0")
        if good and isinstance(supp, int) and \
                sum(census.values()) != supp:
            ok = fail(path, "staticanalysis suppression census sums "
                            f"to {sum(census.values())}, but "
                            f"'suppressions' says {supp!r}")
    return ok


def check_lifetime(path, lt):
    if not isinstance(lt, dict):
        return fail(path, "'lifetime' is not an object")
    ok = True
    engine = lt.get("engine")
    if engine not in ("libclang", "lex"):
        ok = fail(path, "lifetime 'engine' must be 'libclang' or "
                        f"'lex', got {engine!r}")
    checks = lt.get("checks_run")
    if not isinstance(checks, int) or isinstance(checks, bool) \
            or checks < 4:
        # All four lifetime passes (P1..P4) must have run; a report
        # from a --check subset does not count as a clean tree.
        ok = fail(path, "lifetime 'checks_run' must be an integer "
                        f">= 4, got {checks!r}")
    scanned = lt.get("files_scanned")
    if not isinstance(scanned, int) or isinstance(scanned, bool) \
            or scanned <= 0:
        ok = fail(path, "lifetime 'files_scanned' must be an "
                        f"integer > 0, got {scanned!r}")
    for key in ("pooled_types", "persistent_fields", "views"):
        v = lt.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            ok = fail(path, f"lifetime {key!r} must be an integer "
                            f">= 0, got {v!r}")
    violations = lt.get("violations")
    if violations != 0 or isinstance(violations, bool):
        ok = fail(path, "lifetime 'violations' must be 0, "
                        f"got {violations!r}")
    supp = lt.get("suppressions")
    if not isinstance(supp, int) or isinstance(supp, bool) or supp < 0:
        ok = fail(path, "lifetime 'suppressions' must be an "
                        f"integer >= 0, got {supp!r}")
    census = lt.get("suppressions_by_check")
    if not isinstance(census, dict):
        ok = fail(path, "lifetime 'suppressions_by_check' must be "
                        f"an object, got {census!r}")
    else:
        good = True
        for k, v in census.items():
            if not isinstance(k, str) or not k or \
                    not isinstance(v, int) or isinstance(v, bool) or \
                    v < 0:
                good = ok = fail(
                    path, "lifetime suppression census entry "
                          f"{k!r}: {v!r} must map a check id to an "
                          "integer >= 0")
        if good and isinstance(supp, int) and \
                sum(census.values()) != supp:
            ok = fail(path, "lifetime suppression census sums to "
                            f"{sum(census.values())}, but "
                            f"'suppressions' says {supp!r}")
    return ok


def check_staticanalysis_results(path, results):
    # With a staticanalysis block present, results[] carries one
    # entry per pass; a clean report means every pass is clean, not
    # just the total.
    ok = True
    for i, entry in enumerate(results):
        if not isinstance(entry, dict):
            continue  # shape errors reported by check_result
        v = entry.get("violations")
        if v != 0 or isinstance(v, bool):
            ok = fail(path, f"results[{i}] "
                            f"({entry.get('name')!r}): per-pass "
                            f"'violations' must be 0, got {v!r}")
    return ok


def check_replay(path, rep):
    if not isinstance(rep, dict):
        return fail(path, "'replay' is not an object")
    ok = True
    simd = rep.get("simd")
    if simd not in ("avx2", "scalar"):
        ok = fail(path, "replay 'simd' must be 'avx2' or 'scalar', "
                        f"got {simd!r}")
    for k, v in rep.items():
        if k == "simd":
            continue
        if not is_num(v) or v < 0:
            ok = fail(path, f"replay counter {k!r} must be a number "
                            f">= 0, got {v!r}")
    return ok


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")

    ok = True
    if doc.get("schema") != "tlsim-bench-v1":
        ok = fail(path, f"schema is {doc.get('schema')!r}, "
                        "expected 'tlsim-bench-v1'")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        ok = fail(path, "'bench' must be a non-empty string")
    if not isinstance(doc.get("quick"), bool):
        ok = fail(path, "'quick' must be a boolean")
    jobs = doc.get("jobs")
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        ok = fail(path, f"'jobs' must be an integer >= 1, got {jobs!r}")
    for key in ("wall_seconds", "simulated_cycles"):
        v = doc.get(key)
        if not is_num(v) or v < 0:
            ok = fail(path, f"{key!r} must be a number >= 0, got {v!r}")
    if "audit" in doc:
        ok = check_audit(path, doc["audit"]) and ok
    if "modelcheck" in doc:
        ok = check_modelcheck(path, doc["modelcheck"]) and ok
    if "critpath" in doc:
        ok = check_critpath(path, doc["critpath"]) and ok
    if "determinism" in doc:
        ok = check_determinism(path, doc["determinism"]) and ok
    if "staticanalysis" in doc:
        ok = check_staticanalysis(path, doc["staticanalysis"]) and ok
    if "lifetime" in doc:
        ok = check_lifetime(path, doc["lifetime"]) and ok
    if "replay" in doc:
        ok = check_replay(path, doc["replay"]) and ok
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        ok = fail(path, "'results' must be a non-empty list")
    else:
        for i, entry in enumerate(results):
            ok = check_result(path, i, entry) and ok
        if "staticanalysis" in doc or "lifetime" in doc:
            ok = check_staticanalysis_results(path, results) and ok
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        if check_file(path):
            print(f"{path}: OK")
        else:
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
