#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
# Two instrumented build trees next to the source:
#   build-asan  AddressSanitizer + UndefinedBehaviorSanitizer,
#               full unit-test suite;
#   build-tsan  ThreadSanitizer, the threaded components only (the
#               parallel simulation executor, the capture/replay
#               pipeline, and the benches' fan-out) - the rest of the
#               simulator is single-threaded and TSan makes it ~10x
#               slower for no additional coverage.
#
# One uninstrumented variant build:
#   build-simd-off  -DTLSIM_SIMD=OFF: the portable scalar kernels are
#               the only ones compiled in (no AVX2 translation units
#               at all), proving the scalar fallback builds and passes
#               the SIMD-sensitive suites on its own.
#
# One poison-instrumented variant build:
#   build-poison  -DTLSIM_POISON=ON: pooled objects carry lifecycle
#               tokens, released storage is scribbled with canaries,
#               and the acquire path verifies reset completeness
#               (base/poison.h — the runtime half of tools/tlslife.py).
#               Runs the pool-discipline suites plus a quick Figure 5
#               under the full invariant auditor.
#
# The static mode needs no execution at all:
#   build-tsa   Clang thread-safety analysis (-Wthread-safety as
#               errors via -DTLSIM_THREAD_SAFETY=ON) - compile-time
#               proof of the lock discipline TSan can only spot-check
#               dynamically. Skipped with a notice when clang++ is not
#               installed; tlslint (pure python) runs either way, with
#               its --json report validated by check_bench_json.py.
#
# Usage: tools/run_sanitizers.sh [asan|tsan|static|simd-off|poison|all]
# (default: all; --static is accepted as a synonym for static.)
#
# Any sanitizer report is fatal: the builds use
# -fno-sanitize-recover=all, so the first finding aborts the test.

set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc)
mode=${1:-all}

run_asan() {
    echo "=== ASan+UBSan: configure ==="
    cmake -S "$root" -B "$root/build-asan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTLSIM_SANITIZE='address;undefined'
    echo "=== ASan+UBSan: build ==="
    cmake --build "$root/build-asan" -j "$jobs"
    echo "=== ASan+UBSan: full unit-test suite ==="
    ctest --test-dir "$root/build-asan" --output-on-failure \
        -j "$jobs" -L '^sanitize$'
    # The critical-path oracle walks attacker-shaped trace bytes
    # (record offsets, checkpoint tables) with hand-rolled index
    # arithmetic; run its unit tests by name so they stay in this leg
    # even if the sanitize label plumbing changes.
    echo "=== ASan+UBSan: critical-path oracle unit tests ==="
    ctest --test-dir "$root/build-asan" --output-on-failure \
        -j "$jobs" -R '^Critpath(Graph|Analyzer|Placement)\.'
}

run_tsan() {
    echo "=== TSan: configure ==="
    cmake -S "$root" -B "$root/build-tsan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTLSIM_SANITIZE=thread
    echo "=== TSan: build ==="
    cmake --build "$root/build-tsan" -j "$jobs" \
        --target test_base test_sim
    echo "=== TSan: threaded components ==="
    ctest --test-dir "$root/build-tsan" --output-on-failure \
        -j "$jobs" -R 'Executor|Parallel|Shared'
}

run_simd_off() {
    echo "=== simd-off: configure (TLSIM_SIMD=OFF) ==="
    cmake -S "$root" -B "$root/build-simd-off" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTLSIM_SIMD=OFF
    echo "=== simd-off: build ==="
    cmake --build "$root/build-simd-off" -j "$jobs" \
        --target test_base test_mem test_sim
    echo "=== simd-off: SIMD-sensitive suites on the scalar build ==="
    ctest --test-dir "$root/build-simd-off" --output-on-failure \
        -j "$jobs" -R 'Simd|Victim|GoldenEquiv|Executor|Varint'
}

run_static() {
    if command -v clang++ >/dev/null 2>&1; then
        echo "=== static: thread-safety analysis (clang) ==="
        cmake -S "$root" -B "$root/build-tsa" \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DCMAKE_CXX_COMPILER=clang++ \
            -DTLSIM_THREAD_SAFETY=ON
        # Compiling IS the test: -Werror=thread-safety fails the build
        # on any lock-discipline violation. Nothing is executed.
        cmake --build "$root/build-tsa" -j "$jobs"
    else
        echo "=== static: clang++ not installed; skipping" \
             "thread-safety analysis build ==="
    fi
    echo "=== static: tlslint ==="
    python3 "$root/tools/tlslint.py" --root "$root" \
        --json "$root/build-tlslint-report.json"
    python3 "$root/tools/check_bench_json.py" \
        "$root/build-tlslint-report.json"
    echo "=== static: tlsa ==="
    python3 "$root/tools/tlsa.py" --root "$root" --require-manifests \
        --json "$root/build-tlsa-report.json"
    python3 "$root/tools/check_bench_json.py" \
        "$root/build-tlsa-report.json"
    echo "=== static: tlsdet ==="
    python3 "$root/tools/tlsdet.py" --root "$root" --require-manifests \
        --json "$root/build-tlsdet-report.json"
    python3 "$root/tools/check_bench_json.py" \
        "$root/build-tlsdet-report.json"
    echo "=== static: tlslife ==="
    python3 "$root/tools/tlslife.py" --root "$root" --require-manifests \
        --json "$root/build-tlslife-report.json"
    python3 "$root/tools/check_bench_json.py" \
        "$root/build-tlslife-report.json"
}

run_poison() {
    echo "=== poison: configure (TLSIM_POISON=ON) ==="
    cmake -S "$root" -B "$root/build-poison" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTLSIM_POISON=ON
    echo "=== poison: build ==="
    cmake --build "$root/build-poison" -j "$jobs"
    echo "=== poison: pool-discipline suites under canaries ==="
    ctest --test-dir "$root/build-poison" --output-on-failure \
        -j "$jobs" -R 'Poison|Machine|L2|LineSet|Tracer'
    # The end-to-end cross-check: the quick Figure 5 run cycles every
    # EpochRun through the pool thousands of times with the full I1-I6
    # auditor watching; any recycle-discipline slip trips a canary
    # panic or an audit failure, not a wrong number.
    echo "=== poison: quick Figure 5 under full audit ==="
    "$root/build-poison/bench/bench_figure5_overall" \
        --quick --txns=3 --jobs=2 --audit=full \
        "--json=$root/build-poison/figure5_poison.json"
    python3 "$root/tools/check_bench_json.py" \
        "$root/build-poison/figure5_poison.json"
}

case "$mode" in
  asan)          run_asan ;;
  tsan)          run_tsan ;;
  static|--static) run_static ;;
  simd-off)      run_simd_off ;;
  poison)        run_poison ;;
  all)           run_asan; run_tsan; run_simd_off; run_poison; \
                 run_static ;;
  *) echo "usage: $0 [asan|tsan|static|simd-off|poison|all]" >&2
     exit 2 ;;
esac

echo "sanitizers: all clean"
