#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
# Two instrumented build trees next to the source:
#   build-asan  AddressSanitizer + UndefinedBehaviorSanitizer,
#               full unit-test suite;
#   build-tsan  ThreadSanitizer, the threaded components only (the
#               parallel simulation executor and the benches' fan-out)
#               - the rest of the simulator is single-threaded and
#               TSan makes it ~10x slower for no additional coverage.
#
# Usage: tools/run_sanitizers.sh [asan|tsan|all]   (default: all)
#
# Any sanitizer report is fatal: the builds use
# -fno-sanitize-recover=all, so the first finding aborts the test.

set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc)
mode=${1:-all}

run_asan() {
    echo "=== ASan+UBSan: configure ==="
    cmake -S "$root" -B "$root/build-asan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTLSIM_SANITIZE='address;undefined'
    echo "=== ASan+UBSan: build ==="
    cmake --build "$root/build-asan" -j "$jobs"
    echo "=== ASan+UBSan: full unit-test suite ==="
    ctest --test-dir "$root/build-asan" --output-on-failure \
        -j "$jobs" -L '^sanitize$'
}

run_tsan() {
    echo "=== TSan: configure ==="
    cmake -S "$root" -B "$root/build-tsan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTLSIM_SANITIZE=thread
    echo "=== TSan: build ==="
    cmake --build "$root/build-tsan" -j "$jobs" --target test_sim
    echo "=== TSan: threaded components ==="
    ctest --test-dir "$root/build-tsan" --output-on-failure \
        -j "$jobs" -R 'Executor|Parallel|Shared'
}

case "$mode" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *)    echo "usage: $0 [asan|tsan|all]" >&2; exit 2 ;;
esac

echo "sanitizers: all clean"
