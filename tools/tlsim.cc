/**
 * @file
 * tlsim — command-line driver for the sub-threads TLS simulator.
 *
 *   tlsim capture  --benchmark=NEW_ORDER --out=no.trace [options]
 *   tlsim info     --trace=no.trace
 *   tlsim replay   --trace=no.trace [machine options]
 *   tlsim figure5  --benchmark=NEW_ORDER [options]
 *   tlsim figure6  --benchmark=NEW_ORDER [options]
 *   tlsim table2   [options]
 *   tlsim bench    --artifact=figure5|figure6|table2 [options]
 *
 * Common options:
 *   --quick            reduced TPC-C scale
 *   --txns=N           transactions to capture
 *   --original         capture the untuned, unparallelized build
 *   --jobs=N           parallel simulation points (0 = all cores)
 *   --trace-cache=DIR  reuse on-disk trace snapshots across runs
 * Machine options (replay):
 *   --mode=tls|serial|nospec   execution mode (default tls)
 *   --subthreads=K --spacing=N --cpus=N --adaptive
 *   --no-start-table --no-victim --lazy-updates
 *   --audit=off|commit|full    protocol invariant auditor level
 *   --warmup=N         transactions excluded from statistics
 *   --profile          print the dependence profiler afterwards
 *   --det-probe        print canonical capture/replay result digests
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/log.h"
#include "core/machine.h"
#include "core/resulthash.h"
#include "sim/executor.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/tracecache.h"
#include "sim/traceio.h"
#include "tpcc/tpcc.h"
#include "verify/auditor.h"

using namespace tlsim;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> kv;
    bool has(const std::string &k) const { return kv.count(k) > 0; }

    std::string
    str(const std::string &k, const std::string &dflt = "") const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }

    std::uint64_t
    num(const std::string &k, std::uint64_t dflt) const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : std::stoull(it->second);
    }
};

Args
parse(int argc, char **argv)
{
    Args a;
    if (argc >= 2)
        a.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string s = argv[i];
        if (s.rfind("--", 0) != 0)
            fatal("unexpected argument '%s'", s.c_str());
        s = s.substr(2);
        auto eq = s.find('=');
        if (eq == std::string::npos)
            a.kv[s] = "1";
        else
            a.kv[s.substr(0, eq)] = s.substr(eq + 1);
    }
    return a;
}

tpcc::TxnType
benchmarkByName(const std::string &name)
{
    static const std::map<std::string, tpcc::TxnType> names = {
        {"NEW_ORDER", tpcc::TxnType::NewOrder},
        {"NEW_ORDER_150", tpcc::TxnType::NewOrder150},
        {"DELIVERY", tpcc::TxnType::Delivery},
        {"DELIVERY_OUTER", tpcc::TxnType::DeliveryOuter},
        {"STOCK_LEVEL", tpcc::TxnType::StockLevel},
        {"PAYMENT", tpcc::TxnType::Payment},
        {"ORDER_STATUS", tpcc::TxnType::OrderStatus},
    };
    auto it = names.find(name);
    if (it == names.end()) {
        std::string known;
        for (const auto &[n, t] : names)
            known += n + " ";
        fatal("unknown benchmark '%s' (known: %s)", name.c_str(),
              known.c_str());
    }
    return it->second;
}

sim::ExperimentConfig
experimentConfig(const Args &a)
{
    sim::ExperimentConfig cfg;
    if (a.has("quick")) {
        cfg.scale = tpcc::TpccConfig::tiny();
        cfg.scale.items = 2000;
        cfg.scale.customersPerDistrict = 150;
        cfg.scale.ordersPerDistrict = 150;
        cfg.scale.firstNewOrder = 76;
        cfg.txns = 8;
    }
    cfg.txns = static_cast<unsigned>(a.num("txns", cfg.txns));
    cfg.warmupTxns = static_cast<unsigned>(
        a.num("warmup", std::min(2u, cfg.txns / 2)));
    return cfg;
}

MachineConfig
machineConfig(const Args &a)
{
    MachineConfig mc;
    mc.tls.subthreadsPerThread = static_cast<unsigned>(
        a.num("subthreads", mc.tls.subthreadsPerThread));
    mc.tls.subthreadSpacing =
        a.num("spacing", mc.tls.subthreadSpacing);
    mc.tls.numCpus =
        static_cast<unsigned>(a.num("cpus", mc.tls.numCpus));
    mc.tls.adaptiveSpacing = a.has("adaptive");
    if (a.has("no-start-table"))
        mc.tls.useStartTable = false;
    if (a.has("no-victim"))
        mc.tls.useVictimCache = false;
    if (a.has("lazy-updates"))
        mc.tls.aggressiveUpdates = false;
    mc.tls.auditLevel = parseAuditLevel(a.str("audit", "off"));
    return mc;
}

ExecMode
modeByName(const std::string &m)
{
    if (m == "tls")
        return ExecMode::Tls;
    if (m == "serial")
        return ExecMode::Serial;
    if (m == "nospec")
        return ExecMode::NoSpeculation;
    fatal("unknown mode '%s' (tls|serial|nospec)", m.c_str());
}

void
printRun(const RunResult &r)
{
    std::printf("makespan           %llu cycles\n",
                static_cast<unsigned long long>(r.makespan));
    std::printf("transactions       %llu (%.0f cycles each)\n",
                static_cast<unsigned long long>(r.txns),
                r.txns ? static_cast<double>(r.makespan) /
                             static_cast<double>(r.txns)
                       : 0.0);
    std::printf("epochs committed   %llu\n",
                static_cast<unsigned long long>(r.epochs));
    std::printf("violations         %llu primary, %llu secondary\n",
                static_cast<unsigned long long>(r.primaryViolations),
                static_cast<unsigned long long>(r.secondaryViolations));
    std::printf("squashes           %llu (%llu insts rewound)\n",
                static_cast<unsigned long long>(r.squashes),
                static_cast<unsigned long long>(r.rewoundInsts));
    std::printf("sub-threads        %llu started\n",
                static_cast<unsigned long long>(r.subthreadsStarted));
    std::printf("latch waits        %llu; overflow events %llu\n",
                static_cast<unsigned long long>(r.latchWaits),
                static_cast<unsigned long long>(r.overflowEvents));
    std::printf("breakdown          ");
    for (unsigned c = 0; c < kNumCats; ++c) {
        double frac = r.total.total()
                          ? 100.0 * static_cast<double>(
                                        r.total.cycles[c]) /
                                static_cast<double>(r.total.total())
                          : 0.0;
        std::printf("%s %.1f%%  ", catName(static_cast<Cat>(c)), frac);
    }
    std::printf("\n");
    std::printf("caches             L1 %.2f%% miss, L2 %.2f%% miss, "
                "%llu victim hits\n",
                r.l1Hits + r.l1Misses
                    ? 100.0 * static_cast<double>(r.l1Misses) /
                          static_cast<double>(r.l1Hits + r.l1Misses)
                    : 0.0,
                r.l2Hits + r.l2Misses
                    ? 100.0 * static_cast<double>(r.l2Misses) /
                          static_cast<double>(r.l2Hits + r.l2Misses)
                    : 0.0,
                static_cast<unsigned long long>(r.victimHits));
    std::printf("branches           %llu (%.2f%% mispredicted)\n",
                static_cast<unsigned long long>(r.branches),
                r.branches ? 100.0 * static_cast<double>(
                                         r.mispredicts) /
                                 static_cast<double>(r.branches)
                           : 0.0);
}

int
cmdCapture(const Args &a)
{
    tpcc::TxnType type = benchmarkByName(a.str("benchmark"));
    sim::ExperimentConfig cfg = experimentConfig(a);

    tpcc::CaptureOptions opts;
    opts.scale = cfg.scale;
    opts.txns = cfg.txns;
    opts.tlsBuild = !a.has("original");
    opts.parallelMode = !a.has("original");
    std::fprintf(stderr, "capturing %u %s transactions...\n",
                 opts.txns, tpcc::txnTypeName(type));
    WorkloadTrace w = tpcc::captureBenchmark(type, opts);

    std::string out = a.str("out", "workload.trace");
    sim::saveTraceFile(out, w);
    std::printf("wrote %s (%zu transactions)\n", out.c_str(),
                w.txns.size());
    return 0;
}

int
cmdInfo(const Args &a)
{
    WorkloadTrace w;
    if (!sim::loadTraceFile(a.str("trace", "workload.trace"), &w))
        fatal("not a tlsim trace file");
    std::printf("transactions: %zu\n", w.txns.size());
    for (std::size_t i = 0; i < w.txns.size(); ++i) {
        const auto &t = w.txns[i];
        std::printf("  txn %2zu: %llu insts, coverage %.0f%%, "
                    "%llu epochs (%.1f per loop, %.0f insts each)\n",
                    i,
                    static_cast<unsigned long long>(t.totalInsts()),
                    100.0 * t.coverage(),
                    static_cast<unsigned long long>(t.epochCount()),
                    t.epochsPerLoop(), t.meanEpochInsts());
    }
    return 0;
}

int
cmdReplay(const Args &a)
{
    WorkloadTrace w;
    if (!sim::loadTraceFile(a.str("trace", "workload.trace"), &w))
        fatal("not a tlsim trace file");
    MachineConfig mc = machineConfig(a);
    ExecMode mode = modeByName(a.str("mode", "tls"));
    unsigned warmup = static_cast<unsigned>(a.num("warmup", 0));

    TlsMachine m(mc);
    RunResult r = verify::runWithAudit(m, w, mode, warmup);
    if (mc.tls.auditLevel != AuditLevel::Off)
        std::printf("audit              %llu invariant checks, 0 "
                    "violations\n",
                    static_cast<unsigned long long>(r.auditChecks));
    if (a.has("det-probe")) {
        // Canonical per-stage digests (base/dethash.h): the capture
        // digest covers the loaded trace bytes, the replay digest the
        // full RunResult. Two replays of the same trace file must
        // print identical lines whatever the machine's thread count.
        std::printf("det-probe          capture=%016llx replay=%016llx\n",
                    static_cast<unsigned long long>(
                        det::hashWorkloadTrace(w)),
                    static_cast<unsigned long long>(
                        det::hashRunResult(r)));
    }
    printRun(r);
    if (a.has("profile"))
        std::printf("\n%s", m.profiler().reportText(12).c_str());
    if (a.has("stats"))
        m.dumpStats(std::cout);
    return 0;
}

/** Executor sized from --jobs (default 1; 0 = one per core). */
sim::SimExecutor
executorOf(const Args &a)
{
    return sim::SimExecutor(static_cast<unsigned>(a.num("jobs", 1)));
}

int
cmdFigure5(const Args &a)
{
    tpcc::TxnType type = benchmarkByName(a.str("benchmark"));
    sim::ExperimentConfig cfg = experimentConfig(a);
    cfg.machine = machineConfig(a);
    sim::SharedTraces traces =
        sim::captureTracesShared(type, cfg, a.str("trace-cache"));
    sim::SimExecutor ex = executorOf(a);
    sim::Figure5Row row = sim::runFigure5(type, cfg, *traces, ex);
    sim::printFigure5Row(std::cout, row);
    return 0;
}

int
cmdFigure6(const Args &a)
{
    tpcc::TxnType type = benchmarkByName(a.str("benchmark"));
    sim::ExperimentConfig cfg = experimentConfig(a);
    cfg.machine = machineConfig(a);

    const std::vector<unsigned> counts = {2, 4, 8};
    const std::vector<std::uint64_t> spacings = {1000,  2500,  5000,
                                                 10000, 25000, 50000};

    sim::SharedTraces traces =
        sim::captureTracesShared(type, cfg, a.str("trace-cache"));
    sim::SimExecutor ex = executorOf(a);
    RunResult seq = sim::runBar(sim::Bar::Sequential, *traces, cfg);
    std::vector<sim::SweepPoint> points =
        sim::runFigure6(type, cfg, counts, spacings, *traces, ex);
    sim::printFigure6(std::cout, tpcc::txnTypeName(type), points,
                      seq.makespan);
    return 0;
}

int
cmdTable2(const Args &a)
{
    const auto &benches = tpcc::allBenchmarks();
    std::vector<sim::ExperimentConfig> cfgs;
    std::vector<sim::SharedTraces> traces;
    for (tpcc::TxnType type : benches) {
        std::fprintf(stderr, "capturing %s...\n",
                     tpcc::txnTypeName(type));
        cfgs.push_back(experimentConfig(a));
        traces.push_back(sim::captureTracesShared(
            type, cfgs.back(), a.str("trace-cache")));
    }
    sim::SimExecutor ex = executorOf(a);
    std::vector<sim::Table2Row> rows(benches.size());
    ex.parallelFor(benches.size(), [&](std::size_t i) {
        rows[i] = sim::table2Row(benches[i], cfgs[i], *traces[i]);
    });
    sim::printTable2(std::cout, rows);
    return 0;
}

/**
 * `tlsim bench`: run a full paper artifact (default figure5) across
 * all benchmarks, fanning the simulation points over --jobs workers
 * and reusing --trace-cache snapshots. --benchmark=NAME restricts the
 * run to one benchmark.
 */
int
cmdBench(const Args &a)
{
    std::string artifact = a.str("artifact", "figure5");
    if (artifact == "table2")
        return cmdTable2(a);
    if (artifact != "figure5" && artifact != "figure6")
        fatal("unknown artifact '%s' (figure5|figure6|table2)",
              artifact.c_str());

    std::vector<tpcc::TxnType> benches;
    if (a.has("benchmark")) {
        benches.push_back(benchmarkByName(a.str("benchmark")));
    } else if (artifact == "figure6") {
        benches = {tpcc::TxnType::NewOrder, tpcc::TxnType::NewOrder150,
                   tpcc::TxnType::Delivery,
                   tpcc::TxnType::DeliveryOuter,
                   tpcc::TxnType::StockLevel};
    } else {
        benches = tpcc::allBenchmarks();
    }

    sim::ExperimentConfig cfg = experimentConfig(a);
    cfg.machine = machineConfig(a);

    // Serial capture phase, then parallel simulation per benchmark.
    std::vector<sim::SharedTraces> traces;
    for (tpcc::TxnType type : benches) {
        std::fprintf(stderr, "capturing %s...\n",
                     tpcc::txnTypeName(type));
        traces.push_back(sim::captureTracesShared(
            type, cfg, a.str("trace-cache")));
    }

    sim::SimExecutor ex = executorOf(a);
    if (artifact == "figure5") {
        std::vector<sim::Figure5Row> rows;
        for (std::size_t b = 0; b < benches.size(); ++b) {
            rows.push_back(
                sim::runFigure5(benches[b], cfg, *traces[b], ex));
            sim::printFigure5Row(std::cout, rows.back());
        }
        if (!a.has("benchmark"))
            sim::printSpeedupSummary(std::cout, rows);
        return 0;
    }

    const std::vector<unsigned> counts = {2, 4, 8};
    const std::vector<std::uint64_t> spacings = {1000,  2500,  5000,
                                                 10000, 25000, 50000};
    for (std::size_t b = 0; b < benches.size(); ++b) {
        RunResult seq =
            sim::runBar(sim::Bar::Sequential, *traces[b], cfg);
        std::vector<sim::SweepPoint> points = sim::runFigure6(
            benches[b], cfg, counts, spacings, *traces[b], ex);
        sim::printFigure6(std::cout, tpcc::txnTypeName(benches[b]),
                          points, seq.makespan);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    Args a = parse(argc, argv);
    if (a.command == "capture")
        return cmdCapture(a);
    if (a.command == "info")
        return cmdInfo(a);
    if (a.command == "replay")
        return cmdReplay(a);
    if (a.command == "figure5")
        return cmdFigure5(a);
    if (a.command == "figure6")
        return cmdFigure6(a);
    if (a.command == "table2")
        return cmdTable2(a);
    if (a.command == "bench")
        return cmdBench(a);
    std::fprintf(stderr,
                 "usage: tlsim "
                 "<capture|info|replay|figure5|figure6|table2|bench> "
                 "[--key=value ...]\n");
    return a.command.empty() ? 1 : (a.command == "help" ? 0 : 1);
}
