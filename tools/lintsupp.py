"""Shared infrastructure for the repo's static-analysis tools.

tlslint (token-level repo invariants, PR 5), tlsa (whole-program
semantic passes), tlsdet (determinism-discipline passes) and tlslife
(object-lifetime / recycle-discipline passes) share one suppression
grammar, one diagnostic shape, and one token shape, all defined here
so the tools cannot drift:

    // <tool>:allow(<check>): <reason>

where <tool> is `tlslint`, `tlsa`, `tlsdet` or `tlslife` and <check>
is a check id (T1..T4 for tlslint, A1..A4 for tlsa, D1..D4 for
tlsdet, P1..P4 for tlslife). The
reason is mandatory in ALL tools: a bare allow — from any tool's
grammar — is a hard `allow-syntax` error wherever it is seen, so the
tree never accumulates unexplained exemptions even for the tool that
is not currently running.

Each tool only *honours* suppressions written in its own grammar (a
tlsa:allow cannot silence a tlslint check and vice versa; the check-id
namespaces are disjoint anyway), but all tools *count* every reasoned
allow they see, per check id, into the combined suppression census
that `--json` reports as `staticanalysis.suppressions_by_check`.
"""

import re

#: The tools' shared allow grammar. `tool` scopes which linter the
#: allow is addressed to; `check` is deliberately loose (any word) so
#: that a typoed check id still parses — and then suppresses nothing,
#: which surfaces as the original diagnostic still firing.
ALLOW_RE = re.compile(
    r"(?P<tool>tlslint|tlsa|tlsdet|tlslife):"
    r"\s*allow\(\s*(?P<check>[A-Za-z][\w-]*)"
    r"\s*\)\s*(?::\s*(?P<reason>\S.*))?")


class Diagnostic:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class Token:
    """One lexed token: spelling, 1-based line, and a coarse kind."""

    __slots__ = ("text", "line", "kind")

    def __init__(self, text, line, kind):
        self.text = text
        self.line = line
        self.kind = kind  # 'id', 'punct', 'lit', 'comment'


class Suppressions:
    """Per-file map of `// <tool>:allow(<check>): reason` comments.

    A well-formed allow on line L addressed to `own_tool` suppresses
    `check` on line L and — when the comment stands alone — on the
    next line as well. An allow without a reason is itself a
    diagnostic (and suppresses nothing), regardless of which tool it
    addresses: every exemption in the tree must say why it is sound.

    `by_check` is the combined census: reasoned allows seen for ANY
    tool, keyed by check id (the T*/A* namespaces are disjoint).
    """

    def __init__(self, path, tokens, lines, own_tool):
        self.allowed = {}  # line -> set of check ids (own tool only)
        self.used = set()  # (line, check) pairs that fired
        self.diags = []
        self.count = 0  # reasoned allows addressed to own_tool
        self.by_check = {}  # combined census: check -> reasoned count
        for tok in tokens:
            if tok.kind != "comment":
                continue
            for m in ALLOW_RE.finditer(tok.text):
                tool = m.group("tool")
                check = m.group("check")
                reason = m.group("reason")
                if not reason or not reason.strip():
                    self.diags.append(Diagnostic(
                        path, tok.line, "allow-syntax",
                        f"{tool}:allow({check}) without a reason "
                        f"string; write `// {tool}:allow({check}): "
                        "<why this is sound>`"))
                    continue
                self.by_check[check] = self.by_check.get(check, 0) + 1
                if tool != own_tool:
                    continue
                self.count += 1
                span = [tok.line]
                before = lines[tok.line - 1] if tok.line <= len(lines) \
                    else ""
                if before.lstrip().startswith(("//", "/*")):
                    span.append(tok.line + 1)  # standalone comment
                for ln in span:
                    self.allowed.setdefault(ln, set()).add(check)

    def suppresses(self, line, check):
        if check in self.allowed.get(line, set()):
            self.used.add((line, check))
            return True
        return False


def merge_census(total, per_file):
    """Accumulate one file's `by_check` census into `total`."""
    for check, n in per_file.items():
        total[check] = total.get(check, 0) + n
