#!/usr/bin/env python3
"""tlslife: whole-program object-lifetime & recycle analysis.

Usage: tlslife.py [--root DIR] [--engine auto|libclang|lex]
                  [--check P1,P2,...] [--json FILE]
                  [--require-manifests] [--list-checks] [-q]

The replay hot path never frees anything: it *recycles*. LineSet and
L2Cache invalidate en masse by bumping a generation stamp, EpochRun
objects cycle through TlsMachine's pool via acquireRun/releaseRun,
SpecState reuses flat slot arenas, the tracer hands capture buffers
back and forth. Use-after-recycle is therefore invisible to every
dynamic layer we have — ASan never sees a free, TSan never sees a
race, the I1-I6 auditor only fires after stale state has already
corrupted the protocol. tlslife is the fifth static-analysis layer
(tlslint -> tlsa -> tlsdet -> TSA -> this): it reuses tlsa's program
model (member-typed call resolution, base-class member inheritance,
function bodies and call sites) and proves the recycle discipline
structurally.

  P1  generation-guard discipline.
      In the methods of a generation-stamped class (one declaring a
      `gen_` counter): a read of a `.valid` flag with no generation
      comparison in the surrounding expression is a stale-entry read
      waiting for the first reset (the blessed spelling is `live()`:
      `e.valid && e.gen == gen_`); an ordering comparison between
      generation stamps (`e.gen < gen_`) mis-orders across wrap; and
      a bare `++gen_` on a counter narrower than 64 bits, in a body
      with no wrap test (`== 0` / re-seed `gen_ = 1`), resurrects
      every pre-wrap entry after 2^32 resets — lineset.h's clear()
      is the model answer.

  P2  reset completeness.
      For every pooled type declared in tools/poolreset.txt, the
      fields assigned during checkout lifetime (own-method writes
      plus receiver-writes from client code) are structurally diffed
      against the identifiers reachable from the declared reset
      method (transitively through same-class calls). A field
      written but never restored leaks state into the next checkout:
      reset it or declare `persist Class.field # why staleness is
      safe`. A declared verify method (the poison-mode
      assertRecycled) must mention every recycled field too, so the
      runtime cross-check cannot silently fall behind the type.

  P3  pooled-storage escape.
      Borrowed pointers/references to pooled objects (locals,
      parameters, acquire-call results) may not outlive the pool:
      using one after the declared release call, storing one into a
      member, returning references into pooled internals, or
      capturing one in a queued executor task is an error unless the
      member is a declared `owner` or the method a declared `view`.

  P4  reference invalidation.
      A reference/pointer bound into a growable container
      (`T &x = xs[i]`, `.back()`, `.data()`) and used after a call
      that may reallocate it (push_back/resize/clear/swap, directly
      or through a same-class callee) dangles. Composes with tlsa
      A3's reserve discipline: appends to a capacity-reserved
      container are trusted not to reallocate; everything else
      invalidates.

The runtime cross-check is TLSIM_POISON (base/poison.h): release
paths scribble canaries into recycled storage and assert on stale
access, so whatever slips past the static rules aborts the first
time it is exercised. DESIGN.md §4.10 has the catch-bound table.

Suppression: `// tlslife:allow(Pn): reason` (shared grammar with the
other tools via tools/lintsupp.py; a bare allow is a hard error).

Manifest: tools/poolreset.txt, resolved relative to --root so the
fixture mini-repos carry their own. Grammar (reasons mandatory where
shown):

  pooled <Class> reset=<m> [verify=<m>] [acquire=<f>] [release=<f>]
  persist <Class>.<field>   # why stale contents are safe
  view <Class>::<method>    # why the escaping reference is sound
  owner <Class>.<member>    # why this member may hold pooled objects

Without --require-manifests a missing manifest skips P2/P3 (P1/P4
need no declarations and always run); the CI run on the real tree
requires it.

Exit status: 0 clean, 1 violations, 2 usage error.
--json writes a tlsim-bench-v1 report whose `lifetime` block is
validated by tools/check_bench_json.py.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintsupp  # noqa: E402
import tlslint  # noqa: E402  (shared tokenizers: lex + libclang)
import tlsa  # noqa: E402  (shared program model + call resolution)
from lintsupp import Diagnostic  # noqa: E402

CHECK_IDS = ("P1", "P2", "P3", "P4")

MANIFEST_REL = os.path.join("tools", "poolreset.txt")

#: Container methods that rewrite their receiver's contents — the
#: write vocabulary P2 counts against the reset diff.
MUTATORS = {"clear", "assign", "resize", "push_back", "emplace_back",
            "insert", "erase", "reserve", "pop_back", "emplace",
            "fill", "swap", "shrink_to_fit"}

#: Container methods that may move the element storage — the P4
#: invalidation vocabulary (clear/erase/pop_back do not reallocate
#: but do destroy the referent, which dangles just as hard).
GROWERS = {"push_back", "emplace_back", "resize", "insert", "emplace",
           "assign", "reserve", "clear", "erase", "pop_back",
           "shrink_to_fit"}

#: Appends A3's reserve discipline vouches for: when the receiver is
#: capacity-reserved in the same function, these stay in place.
RESERVED_SAFE = {"push_back", "emplace_back"}

#: Accessors whose result points into the receiver's element storage.
INTO_STORAGE = {"back", "front", "data", "begin", "end", "cbegin",
                "cend", "rbegin", "rend"}

#: Task-queueing entry points for the P3 capture rule (tlsdet's D3
#: executors plus plain submission).
EXECUTORS = {"parallelFor", "pipeline", "submit"}

#: Generation-counter types narrow enough that wrap is reachable in a
#: long simulation (uint64 needs ~585 years of resets at 1 GHz).
NARROW_GEN_TYPES = {"uint32_t", "uint16_t", "uint8_t", "u32", "u16",
                    "u8", "unsigned", "int", "uint32"}


# --- manifest ------------------------------------------------------------

class PoolManifest:
    def __init__(self):
        self.pooled = {}   # cls -> {reset, verify, acquire, release,
        #                            line}
        self.persist = {}  # (cls, field) -> (reason, line)
        self.views = {}    # (cls, method) -> (reason, line)
        self.owners = {}   # (cls, member) -> (reason, line)
        self.errors = []   # (line, message)


def load_poolreset(path):
    """tools/poolreset.txt, or None if absent. Reasons ride in the
    `# ...` comment and are mandatory for persist/view/owner: every
    exemption from the lifetime rules must say why it is sound."""
    if not os.path.exists(path):
        return None
    man = PoolManifest()
    with open(path, encoding="utf-8") as f:
        for num, raw in enumerate(f, 1):
            body, _, comment = raw.partition("#")
            line = body.strip()
            reason = comment.strip()
            if not line:
                continue
            parts = line.split()
            kw = parts[0]
            if kw == "pooled" and len(parts) >= 3:
                entry = {"reset": None, "verify": None,
                         "acquire": None, "release": None,
                         "line": num}
                ok = True
                for p in parts[2:]:
                    k, eq, v = p.partition("=")
                    if eq and v and k in ("reset", "verify",
                                          "acquire", "release"):
                        entry[k] = v
                    else:
                        ok = False
                if ok and entry["reset"]:
                    man.pooled[parts[1]] = entry
                else:
                    man.errors.append((num, (
                        f"malformed pooled line `{line}`: need "
                        "`pooled <Class> reset=<method> [verify=<m>]"
                        " [acquire=<f>] [release=<f>]`")))
            elif kw == "persist" and len(parts) == 2 and \
                    "." in parts[1]:
                cls, _, field = parts[1].partition(".")
                if not reason:
                    man.errors.append((num, (
                        f"persist {parts[1]} without a `# reason`: "
                        "a field exempt from the reset diff must say "
                        "why stale contents are safe")))
                else:
                    man.persist[(cls, field)] = (reason, num)
            elif kw == "view" and len(parts) == 2 and \
                    "::" in parts[1]:
                cls, _, meth = parts[1].partition("::")
                if not reason:
                    man.errors.append((num, (
                        f"view {parts[1]} without a `# reason`: an "
                        "escaping reference must say why its "
                        "lifetime is sound")))
                else:
                    man.views[(cls, meth)] = (reason, num)
            elif kw == "owner" and len(parts) == 2 and \
                    "." in parts[1]:
                cls, _, mem = parts[1].partition(".")
                if not reason:
                    man.errors.append((num, (
                        f"owner {parts[1]} without a `# reason`: a "
                        "member holding pooled objects must say why "
                        "it owns them")))
                else:
                    man.owners[(cls, mem)] = (reason, num)
            else:
                man.errors.append((num, (
                    f"unrecognized manifest line `{line}`")))
    return man


# --- token helpers -------------------------------------------------------

def _is_incr_at(code, k, hi):
    """True when code[k] starts ++ or -- under either engine's
    lexing (libclang: one token; built-in lexer: two)."""
    t = code[k].text
    if t in ("++", "--"):
        return True
    return (t in ("+", "-") and k + 1 < hi
            and code[k + 1].text == t)


def _chain_end(code, k, hi):
    """Walk a postfix chain starting at id code[k]: subscripts and
    member selects. Returns (ids, j) where ids are the chain's
    identifier tokens in order and j indexes the first token past
    the chain (an operator, '(', ';', ...)."""
    ids = [code[k]]
    j = k + 1
    while j < hi:
        if code[j].text == "[":
            j = tlsa._match_forward(code, j, "[", "]") + 1
        elif code[j].text in (".", "->") and j + 1 < hi and \
                code[j + 1].kind == "id":
            ids.append(code[j + 1])
            j += 2
        else:
            break
    return ids, j


def _write_op_at(code, j, hi):
    """Classify the token at j as a write operator: returns '=' for
    plain assignment, the op char for compound assignment, '++'/'--'
    for postfix bump, or None."""
    if j >= hi:
        return None
    t = code[j].text
    if t == "=" and (j + 1 >= hi or code[j + 1].text != "="):
        return "="
    if len(t) == 2 and t[1] == "=" and t[0] in "+-*/|&^%":
        return t[0]
    if t in "+-*/|&^%" and j + 1 < hi and code[j + 1].text == "=":
        return t
    if t in ("++", "--"):
        return t
    if t in ("+", "-") and j + 1 < hi and code[j + 1].text == t:
        return t + t
    return None


def collect_writes(code, lo, hi):
    """Structural write events in code[lo:hi): (field, line,
    through_receiver) triples. A write is a plain or compound
    assignment, an increment/decrement (either side), a mutating
    container call, or being handed to swap(). For a chained lvalue
    (`run->cps[0].pc = v`) every identifier on the chain is
    reported — the leaf field and the containers holding it are all
    rewritten."""
    out = []
    k = lo
    while k < hi:
        tok = code[k]
        # Prefix ++x / ++recv.field.
        if _is_incr_at(code, k, hi):
            j = k + (1 if tok.text in ("++", "--") else 2)
            if j < hi and code[j].kind == "id" and \
                    code[j].text not in tlsa.KEYWORDS:
                ids, _ = _chain_end(code, j, hi)
                for pos, t in enumerate(ids):
                    out.append((t.text, t.line, pos > 0))
                k = j + 1
                continue
            k = j
            continue
        if tok.kind != "id" or tok.text in tlsa.KEYWORDS:
            k += 1
            continue
        prev = code[k - 1].text if k > 0 else ""
        if prev in (".", "->"):
            k += 1  # chain interior: handled from the chain head
            continue
        # Argument of a swap() call: both sides are rewritten.
        if prev in ("(", ","):
            b = k - 1
            depth = 0
            while b > 0:
                tb = code[b].text
                if tb == ")":
                    depth += 1
                elif tb == "(":
                    if depth == 0:
                        break
                    depth -= 1
                b -= 1
            if b > 0 and code[b - 1].text == "swap":
                out.append((tok.text, tok.line, False))
        ids, j = _chain_end(code, k, hi)
        if j < hi and code[j].text == "(":
            if len(ids) >= 2 and ids[-1].text in MUTATORS:
                t = ids[-2]
                out.append((t.text, t.line, len(ids) > 2))
            k = j
            continue
        if _write_op_at(code, j, hi) is not None:
            for pos, t in enumerate(ids):
                out.append((t.text, t.line, pos > 0))
        k = j if j > k else k + 1
    return out


def swap_growths(code, lo, hi):
    """(name, idx, line) for identifiers handed to swap() — the one
    mutator whose receiver-based detection misses its argument."""
    out = []
    for k in range(lo, hi):
        if code[k].kind != "id" or code[k].text in tlsa.KEYWORDS:
            continue
        if code[k - 1].text not in ("(", ","):
            continue
        b = k - 1
        depth = 0
        while b > lo:
            tb = code[b].text
            if tb == ")":
                depth += 1
            elif tb == "(":
                if depth == 0:
                    break
                depth -= 1
            b -= 1
        if b > lo and code[b - 1].text == "swap":
            out.append((code[k].text, k, code[k].line))
    return out


def mention_closure(prog, fn, cls):
    """(names, fn_ids): every identifier mentioned by `fn` or by a
    same-class method it transitively calls — reset() delegating to
    smRow() still restores what smRow touches."""
    names = set()
    seen = set()
    work = [fn]
    while work:
        f = work.pop()
        if id(f) in seen:
            continue
        seen.add(id(f))
        if f.body is None or f.body[1] is None:
            continue
        lo, hi = f.body
        code = prog.files[f.relpath].code
        for k in range(lo, hi):
            if code[k].kind == "id":
                names.add(code[k].text)
        for c in f.calls:
            callee = prog.resolve(c, f)
            if callee is not None and callee.cls == cls:
                work.append(callee)
    return names, seen


def _returns_ref_or_ptr(prog, fn):
    """True when the declared return type carries `*` or `&`: a
    backwards scan from the function name to the previous statement
    boundary (qualifier chains carry neither)."""
    if fn.sig is None:
        return False
    code = prog.files[fn.relpath].code
    b = fn.sig[0] - 2  # token before the function name
    while b >= 1 and code[b].text == "::" and \
            code[b - 1].kind == "id":
        b -= 2
    while b >= 0 and code[b].text not in (";", "{", "}", ":"):
        if code[b].text in ("*", "&"):
            return True
        b -= 1
    return False


# --- P1: generation-guard discipline -------------------------------------

def _has_wrap_guard(code, lo, hi):
    """True when the body tests the counter for wrap (`gen_ == 0`)
    or re-seeds it (`gen_ = 1`) — the lineset.h clear() idiom."""
    for k in range(lo, hi - 2):
        if code[k].text != "gen_":
            continue
        a, b = code[k + 1].text, code[k + 2].text
        if a == "==" and b == "0":
            return True
        if a == "=" and b == "=" and k + 3 < hi and \
                code[k + 3].text == "0":
            return True
        if a == "=" and b == "1":
            return True
    return False


def check_p1(prog, report):
    gen_classes = {}
    for (cls, member), mtype in prog.member_types.items():
        if member == "gen_":
            gen_classes[cls] = mtype
    for fn in prog.funcs:
        if fn.cls not in gen_classes or fn.body is None or \
                fn.body[1] is None:
            continue
        lo, hi = fn.body
        code = prog.files[fn.relpath].code
        narrow = gen_classes[fn.cls] in NARROW_GEN_TYPES
        guarded = _has_wrap_guard(code, lo, hi)
        for k in range(lo, hi):
            t = code[k].text
            if t not in ("gen", "gen_", "valid"):
                continue
            prev = code[k - 1].text if k > lo else ""
            nxt = code[k + 1].text if k + 1 < hi else ""
            nxt2 = code[k + 2].text if k + 2 < hi else ""
            if t == "gen_" and narrow and not guarded:
                bumped = (
                    prev in ("++", "--")
                    or (prev in ("+", "-") and k >= 2
                        and code[k - 2].text == prev)
                    or nxt in ("++", "--")
                    or (nxt in ("+", "-") and nxt2 == nxt)
                    or (len(nxt) == 2 and nxt[1] == "="
                        and nxt[0] in "+-")
                    or (nxt in ("+", "-") and nxt2 == "="))
                if bumped:
                    report(Diagnostic(
                        fn.relpath, code[k].line, "P1",
                        f"`{fn.qual}` bumps the "
                        f"{gen_classes[fn.cls]} generation counter "
                        "with no wrap handling: after 2^32 resets "
                        "the stamp wraps and every pre-wrap entry "
                        "reads as live again; mirror "
                        "LineSet::clear() — on wrap, wipe the slots "
                        "and re-seed `gen_ = 1`"))
            if t in ("gen", "gen_"):
                ordering = None
                if nxt in ("<=", ">="):
                    ordering = nxt
                elif nxt in ("<", ">") and nxt2 != nxt:
                    ordering = nxt if nxt2 != "=" else nxt + "="
                if ordering is not None:
                    window = {code[m].text
                              for m in range(k + 2,
                                             min(k + 8, hi))}
                    if {"gen", "gen_"} & window:
                        report(Diagnostic(
                            fn.relpath, code[k].line, "P1",
                            f"`{fn.qual}` orders generation stamps "
                            f"with `{ordering}`: stamp comparison "
                            "is only wrap-safe for equality; "
                            "compare `== gen_` (the live() "
                            "spelling) instead"))
            if t == "valid" and prev in (".", "->"):
                wrote = _write_op_at(code, k + 1, hi)
                if wrote is not None:
                    continue
                wlo = max(lo, k - 8)
                whi = min(hi, k + 8)
                window = {code[m].text for m in range(wlo, whi)}
                if not ({"gen", "gen_", "live"} & window):
                    report(Diagnostic(
                        fn.relpath, code[k].line, "P1",
                        f"`{fn.qual}` reads `.valid` with no "
                        "generation comparison in the surrounding "
                        "expression: a stale entry keeps "
                        "valid=true across resets; use the blessed "
                        "liveness check (`live()`: `e.valid && "
                        "e.gen == gen_`)"))


# --- P2: reset completeness ----------------------------------------------

def check_p2(prog, man, report):
    for (num, msg) in man.errors:
        report(Diagnostic(MANIFEST_REL, num, "P2", msg))
    for cls in sorted(man.pooled):
        info = man.pooled[cls]
        members = prog.members_of(cls)
        if not members and cls not in prog.classes:
            report(Diagnostic(
                MANIFEST_REL, info["line"], "P2",
                f"poolreset.txt declares unknown pooled type "
                f"`{cls}`"))
            continue
        reset_fn = prog.by_qual.get(f"{cls}::{info['reset']}")
        if reset_fn is None:
            report(Diagnostic(
                MANIFEST_REL, info["line"], "P2",
                f"pooled `{cls}` names unknown reset method "
                f"`{cls}::{info['reset']}`"))
            continue
        restored, skip_ids = mention_closure(prog, reset_fn, cls)
        verified = None
        if info["verify"]:
            verify_fn = prog.by_qual.get(f"{cls}::{info['verify']}")
            if verify_fn is None:
                report(Diagnostic(
                    MANIFEST_REL, info["line"], "P2",
                    f"pooled `{cls}` names unknown verify method "
                    f"`{cls}::{info['verify']}`"))
            else:
                verified, vids = mention_closure(prog, verify_fn,
                                                 cls)
                skip_ids |= vids
        written = {}  # field -> (fn, line) first witness
        for fn in prog.funcs:
            if fn.body is None or fn.body[1] is None:
                continue
            if id(fn) in skip_ids:
                continue
            if fn.cls == cls and (fn.name == cls
                                  or fn.name.startswith("~")):
                continue  # construction is not checkout lifetime
            lo, hi = fn.body
            code = prog.files[fn.relpath].code
            for name, line, prefixed in collect_writes(code, lo, hi):
                if name not in members:
                    continue
                if fn.cls == cls or prefixed:
                    written.setdefault(name, (fn, line))
        for field in sorted(written):
            if (cls, field) in man.persist:
                continue
            wfn, wline = written[field]
            _, drel, dline = members[field]
            where = (drel, dline) if drel else (wfn.relpath, wline)
            if field not in restored:
                report(Diagnostic(
                    where[0], where[1], "P2",
                    f"`{cls}::{field}` is written during checkout "
                    f"(e.g. in `{wfn.qual}` at {wfn.relpath}:"
                    f"{wline}) but never restored by "
                    f"`{cls}::{info['reset']}`: a recycled {cls} "
                    "leaks it into the next checkout; reset it or "
                    f"declare `persist {cls}.{field}  # <why "
                    "staleness is safe>` in tools/poolreset.txt"))
            elif verified is not None and field not in verified:
                report(Diagnostic(
                    where[0], where[1], "P2",
                    f"`{cls}::{field}` is recycled but the "
                    f"declared verify method "
                    f"`{cls}::{info['verify']}` never checks it: "
                    "the poison-mode cross-check has fallen behind "
                    "the type; assert on it or declare it persist"))
    for (cls, field), (_, num) in sorted(man.persist.items()):
        if cls in man.pooled:
            members = prog.members_of(cls)
            if members and field not in members:
                report(Diagnostic(
                    MANIFEST_REL, num, "P2",
                    f"persist names unknown field `{cls}.{field}`"))


# --- P3: pooled-storage escape -------------------------------------------

def _stores_handle(code, span, hi, names):
    """True when an identifier from `names` appears in the token
    span *as a handle* — not dereferenced. `runs_[cpu] = move(run)`
    stores the pooled object; `cpuSeqs_[cpu] = runs_[cpu]->seq`
    copies a value out of it, which escapes nothing."""
    for m in span:
        if code[m].kind != "id" or code[m].text not in names:
            continue
        j = m + 1
        while j < hi and code[j].text == "[":
            j = tlsa._match_forward(code, j, "[", "]") + 1
        if j < hi and code[j].text in (".", "->"):
            continue
        return True
    return False


def _pooled_handles(prog, fn, man):
    """name -> (cls, decl_line) for this function's borrowed pooled
    handles: `C *x` / `C &x` declarations (params included) and
    locals assigned from a declared acquire call. unique_ptr<C>
    owners are deliberately untracked — ownership transfer out of
    the pool is the one sanctioned escape."""
    handles = {}
    code = prog.files[fn.relpath].code
    spans = []
    if fn.sig is not None:
        spans.append(fn.sig)
    if fn.body is not None and fn.body[1] is not None:
        spans.append(fn.body)
    acquires = {i["acquire"]: c for c, i in man.pooled.items()
                if i["acquire"]}
    for lo, hi in spans:
        for k in range(lo, hi):
            t = code[k].text
            if t in man.pooled:
                prev = code[k - 1].text if k > 0 else ""
                if prev in ("<", "::"):
                    continue  # template argument / nested name
                j = k + 1
                indirect = False
                while j < hi and code[j].text in ("*", "&", "const"):
                    if code[j].text in ("*", "&"):
                        indirect = True
                    j += 1
                if indirect and j < hi and code[j].kind == "id" \
                        and code[j].text not in tlsa.KEYWORDS:
                    handles[code[j].text] = (t, code[j].line)
            elif t in acquires and k + 1 < hi and \
                    code[k + 1].text == "(":
                b = k - 1
                steps = 0
                while b > lo and steps < 6 and \
                        code[b].text not in (";", "{", "}", "="):
                    b -= 1
                    steps += 1
                if b > lo and code[b].text == "=" and \
                        code[b - 1].kind == "id":
                    handles[code[b - 1].text] = \
                        (acquires[t], code[b - 1].line)
    return handles


def check_p3(prog, man, report):
    for (cls, meth), (_, num) in sorted(man.views.items()):
        if prog.by_qual.get(f"{cls}::{meth}") is None:
            report(Diagnostic(
                MANIFEST_REL, num, "P3",
                f"view names unknown method `{cls}::{meth}`"))
    for (cls, mem), (_, num) in sorted(man.owners.items()):
        members = prog.members_of(cls)
        if members and mem not in members:
            report(Diagnostic(
                MANIFEST_REL, num, "P3",
                f"owner names unknown member `{cls}.{mem}`"))

    releases = {i["release"] for i in man.pooled.values()
                if i["release"]}
    rel_class = {i["release"]: c for c, i in man.pooled.items()
                 if i["release"]}
    acquires = {i["acquire"] for i in man.pooled.values()
                if i["acquire"]}

    for fn in prog.funcs:
        if fn.body is None or fn.body[1] is None:
            continue
        lo, hi = fn.body
        code = prog.files[fn.relpath].code
        handles = _pooled_handles(prog, fn, man)
        own_members = prog.members_of(fn.cls) if fn.cls else {}
        owned = {m for (c, m) in man.owners if c == fn.cls}

        # (a) use after the declared release call.
        rel_spans = []
        for k in range(lo, hi):
            if code[k].text in releases and k + 1 < hi and \
                    code[k + 1].text == "(":
                rel_spans.append(
                    (k, tlsa._match_forward(code, k + 1, "(", ")")))
        if rel_spans and handles:
            assigns = {}  # name -> sorted indices of reassignment
            uses = {}     # name -> [(idx, line)]
            for k in range(lo, hi):
                t = code[k].text
                if t not in handles:
                    continue
                if code[k - 1].text in (".", "->"):
                    continue  # a field named like the handle
                if k + 1 < hi and code[k + 1].text == "=" and \
                        (k + 2 >= hi or code[k + 2].text != "="):
                    assigns.setdefault(t, []).append(k)
                    continue
                if any(s <= k <= e for s, e in rel_spans):
                    continue  # the release call's own argument
                uses.setdefault(t, []).append((k, code[k].line))
            for name, sites in sorted(uses.items()):
                cls = handles[name][0]
                relevant = [s for s, _ in rel_spans
                            if rel_class.get(code[s].text) == cls]
                for k, line in sites:
                    before = [r for r in relevant if r < k]
                    if not before:
                        continue
                    r = max(before)
                    if any(r < a < k
                           for a in assigns.get(name, [])):
                        continue
                    report(Diagnostic(
                        fn.relpath, line, "P3",
                        f"`{name}` (a borrowed {cls}) is used "
                        f"after `{code[r].text}()` returned it to "
                        f"the pool at line {code[r].line}: the "
                        "object may already be recycled into "
                        "another checkout; use it before the "
                        "release, or re-acquire"))
                    break  # one diagnostic per handle is enough

        # (b) pooled handle stored into a member.
        if fn.cls and own_members:
            k = lo
            while k < hi:
                tok = code[k]
                if tok.kind != "id" or \
                        tok.text not in own_members or \
                        code[k - 1].text in (".", "->"):
                    k += 1
                    continue
                member = tok.text
                ids, j = _chain_end(code, k, hi)
                span = None
                if j < hi and code[j].text == "=" and \
                        (j + 1 >= hi or code[j + 1].text != "="):
                    end = j
                    while end < hi and code[end].text != ";":
                        end += 1
                    span = range(j + 1, end)
                elif j < hi and code[j].text == "(" and \
                        len(ids) >= 2 and ids[-1].text in (
                            "push_back", "emplace_back", "insert",
                            "emplace", "assign"):
                    member = ids[0].text
                    span = range(j + 1,
                                 tlsa._match_forward(code, j,
                                                     "(", ")"))
                if span is not None:
                    if _stores_handle(code, span, hi,
                                      set(handles) | owned):
                        if (fn.cls, member) not in man.owners:
                            report(Diagnostic(
                                fn.relpath, tok.line, "P3",
                                f"`{fn.cls}::{member}` stores a "
                                "pooled object (or a handle to "
                                f"one) in `{fn.qual}`: the member "
                                "outlives the checkout; declare "
                                f"`owner {fn.cls}.{member}  # "
                                "<why>` in tools/poolreset.txt if "
                                "this member is pool storage"))
                    k = span.stop if span.stop > k else k + 1
                    continue
                k += 1

        # (c) returning a reference into pooled storage.
        if _returns_ref_or_ptr(prog, fn) and \
                fn.name not in acquires and \
                fn.name not in releases and \
                (fn.cls, fn.name) not in man.views:
            pooled_members = set(own_members) \
                if fn.cls in man.pooled else set()
            ref_into = set()
            if pooled_members:
                for k in range(lo, hi):
                    if code[k].kind == "id" and \
                            code[k - 1].text in ("&", "*") and \
                            k + 1 < hi and code[k + 1].text == "=":
                        end = k + 2
                        while end < hi and code[end].text != ";":
                            end += 1
                        init = {code[m].text
                                for m in range(k + 2, end)}
                        if init & pooled_members:
                            ref_into.add(code[k].text)
            suspects = pooled_members | ref_into | \
                set(handles) | owned
            if suspects:
                for k in range(lo, hi):
                    if code[k].text != "return":
                        continue
                    end = k + 1
                    while end < hi and code[end].text != ";":
                        end += 1
                    names = {code[m].text
                             for m in range(k + 1, end)}
                    if names & suspects:
                        leaked = sorted(names & suspects)[0]
                        report(Diagnostic(
                            fn.relpath, code[k].line, "P3",
                            f"`{fn.qual}` returns a "
                            "pointer/reference into pooled "
                            f"storage (`{leaked}`): the referent "
                            "dies at the next recycle; declare "
                            f"`view {fn.cls}::{fn.name}  # <why "
                            "callers cannot outlive it>` in "
                            "tools/poolreset.txt if the borrow "
                            "is consumed immediately"))
                        break

        # (d) pooled handle captured by a queued executor task.
        if handles:
            for cs in fn.calls:
                if cs.name not in EXECUTORS:
                    continue
                if cs.idx + 1 >= len(code) or \
                        code[cs.idx + 1].text != "(":
                    continue
                close = tlsa._match_forward(code, cs.idx + 1,
                                            "(", ")")
                names = {code[m].text
                         for m in range(cs.idx + 2, close)}
                caught = sorted(names & set(handles))
                if caught:
                    report(Diagnostic(
                        fn.relpath, cs.line, "P3",
                        f"`{cs.name}` task in `{fn.qual}` captures "
                        f"the pooled handle `{caught[0]}`: the "
                        "task may run after the object returns to "
                        "the pool; pass indices/copies into tasks, "
                        "never pooled borrows"))


# --- P4: reference invalidation ------------------------------------------

def check_p4(prog, report):
    resolved = {id(fn): [prog.resolve(c, fn) for c in fn.calls]
                for fn in prog.funcs}
    # Direct growth vocabulary per function: receivers of grower
    # calls plus swap() arguments; then a same-class fixpoint so
    # `findOrInsert()` carries grow()'s invalidation set.
    direct = {}
    for fn in prog.funcs:
        g = {cs.recv for cs in fn.calls
             if cs.name in GROWERS and cs.recv}
        if fn.body is not None and fn.body[1] is not None:
            code = prog.files[fn.relpath].code
            g |= {name for name, _, _ in
                  swap_growths(code, *fn.body)}
        direct[id(fn)] = g
    trans = {k: set(v) for k, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for fn in prog.funcs:
            for callee in resolved[id(fn)]:
                if callee is None or not fn.cls or \
                        callee.cls != fn.cls:
                    continue
                extra = trans[id(callee)] - trans[id(fn)]
                if extra:
                    trans[id(fn)] |= extra
                    changed = True

    for fn in prog.funcs:
        if fn.body is None or fn.body[1] is None:
            continue
        lo, hi = fn.body
        code = prog.files[fn.relpath].code
        events = []  # (idx, order, payload...)
        k = lo
        while k < hi:
            tok = code[k]
            if (tok.kind == "id" and tok.text not in tlsa.KEYWORDS
                    and k >= 2
                    and code[k - 1].text in ("&", "*")
                    and (code[k - 2].kind == "id"
                         or code[k - 2].text in (">", ">>"))
                    and k + 1 < hi and code[k + 1].text == "="
                    and (k + 2 >= hi
                         or code[k + 2].text != "=")):
                j = k + 2
                conts = set()
                while j < hi and code[j].text != ";":
                    if code[j].kind == "id" and j + 1 < hi:
                        nx = code[j + 1].text
                        if nx == "[":
                            conts.add(code[j].text)
                        elif nx in (".", "->") and j + 2 < hi and \
                                code[j + 2].text in INTO_STORAGE:
                            conts.add(code[j].text)
                    j += 1
                if conts:
                    events.append((k, 0, "bind", tok.text, conts,
                                   tok.line))
                k = j
                continue
            k += 1
        if not events:
            continue
        bind_names = {e[3] for e in events}
        for ci, cs in enumerate(fn.calls):
            if cs.idx < lo or cs.idx >= hi:
                continue
            if cs.name in GROWERS and cs.recv:
                if cs.name in RESERVED_SAFE and \
                        cs.recv in prog.reserved:
                    continue  # A3's reserve discipline holds here
                events.append((cs.idx, 1, "grow", {cs.recv},
                               f"`{cs.recv}.{cs.name}()`",
                               cs.line))
            else:
                callee = resolved[id(fn)][ci]
                if callee is not None and fn.cls and \
                        callee.cls == fn.cls:
                    g = trans[id(callee)]
                    if g:
                        events.append((cs.idx, 1, "grow", set(g),
                                       f"`{cs.name}()`", cs.line))
        for name, _, line2 in swap_growths(code, lo, hi):
            pass  # swap sites already feed `direct` above; a local
            # swap invalidates via the grow events of its callees
        for k in range(lo, hi):
            if code[k].kind == "id" and code[k].text in bind_names:
                events.append((k, 2, "use", code[k].text,
                               code[k].line))
        events.sort(key=lambda e: (e[0], e[1]))
        live = {}
        reported = set()
        for ev in events:
            kind = ev[2]
            if kind == "bind":
                live[ev[3]] = {"conts": ev[4], "stale": None}
            elif kind == "grow":
                for st in live.values():
                    if st["stale"] is None and \
                            st["conts"] & ev[3]:
                        st["stale"] = (ev[4], ev[5])
            else:
                st = live.get(ev[3])
                if st is not None and st["stale"] is not None \
                        and ev[3] not in reported:
                    reported.add(ev[3])
                    via, gline = st["stale"]
                    conts = "/".join(sorted(st["conts"]))
                    report(Diagnostic(
                        fn.relpath, ev[4], "P4",
                        f"`{ev[3]}` binds into `{conts}` but "
                        f"{via} at line {gline} may reallocate or "
                        "destroy the element; re-take the "
                        "reference after the growth (the "
                        "recordLoad idiom) or hold an index"))


# --- driver --------------------------------------------------------------

def write_json(path, engine, enabled, files_scanned, per_check,
               census, man, wall):
    doc = {
        "schema": "tlsim-bench-v1",
        "bench": "tlslife",
        "quick": False,
        "jobs": 1,
        "wall_seconds": wall,
        "simulated_cycles": 0,
        "lifetime": {
            "engine": engine,
            "checks_run": len(enabled),
            "files_scanned": files_scanned,
            "pooled_types": len(man.pooled) if man else 0,
            "persistent_fields": len(man.persist) if man else 0,
            "views": len(man.views) if man else 0,
            "violations": sum(per_check.values()),
            "suppressions": sum(census.values()),
            "suppressions_by_check": dict(sorted(census.items())),
        },
        "results": [
            {"name": c, "violations": per_check.get(c, 0)}
            for c in sorted(set(enabled) | set(per_check))
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(
        description="whole-program object-lifetime analysis")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of "
                         "tools/)")
    ap.add_argument("--engine", default="auto",
                    choices=("auto", "libclang", "lex"))
    ap.add_argument("--check", default=None,
                    help="comma-separated subset of passes "
                         "(default: all)")
    ap.add_argument("--json", default=None, metavar="FILE")
    ap.add_argument("--require-manifests", action="store_true",
                    help="missing poolreset.txt is an error (the "
                         "real-tree CI configuration)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for c in CHECK_IDS:
            print(c)
        return 0

    if args.check:
        enabled = [c.strip() for c in args.check.split(",")
                   if c.strip()]
        bad = [c for c in enabled if c not in CHECK_IDS]
        if bad:
            print(f"tlslife: unknown check(s): {', '.join(bad)}",
                  file=sys.stderr)
            return 2
    else:
        enabled = list(CHECK_IDS)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)

    sources = tlsa.find_sources(root)
    if not sources:
        print("tlslife: no sources found", file=sys.stderr)
        return 2

    start = time.monotonic()
    tokenizer, engine = tlslint.make_tokenizer(args.engine)

    files = {}
    supp_of = {}
    diags = []
    census = {}
    for full, rel in sources:
        try:
            with open(full, encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
        except OSError as e:
            diags.append(Diagnostic(rel, 0, "io", str(e)))
            continue
        tokens = tokenizer(full, text)
        lines = text.splitlines()
        files[rel] = tlsa.build_file_model(rel, tokens, lines)
        supp = lintsupp.Suppressions(rel, tokens, lines, "tlslife")
        supp_of[rel] = supp
        diags.extend(supp.diags)
        lintsupp.merge_census(census, supp.by_check)

    prog = tlsa.Program(files)

    def report(d):
        supp = supp_of.get(d.path)
        if supp is None or not supp.suppresses(d.line, d.check):
            diags.append(d)

    man = load_poolreset(os.path.join(root, MANIFEST_REL))
    if man is None and args.require_manifests:
        report(Diagnostic(
            MANIFEST_REL, 0, "P2",
            "missing manifest: declare the pooled/recycled types "
            "(or none) explicitly (--require-manifests)"))

    if "P1" in enabled:
        check_p1(prog, report)
    if man is not None:
        if "P2" in enabled:
            check_p2(prog, man, report)
        if "P3" in enabled:
            check_p3(prog, man, report)
    if "P4" in enabled:
        check_p4(prog, report)

    diags.sort(key=lambda d: (d.path, d.line, d.check, d.message))
    seen = set()
    uniq = []
    for d in diags:
        key = (d.path, d.line, d.check, d.message)
        if key not in seen:
            seen.add(key)
            uniq.append(d)
    diags = uniq
    per_check = {}
    for d in diags:
        per_check[d.check] = per_check.get(d.check, 0) + 1
        if not args.quiet:
            print(d)

    if args.json:
        write_json(args.json, engine, enabled, len(sources),
                   per_check, census, man,
                   time.monotonic() - start)

    if not args.quiet:
        verdict = (f"{len(diags)} violation(s)" if diags
                   else "clean")
        print(f"tlslife[{engine}]: {len(sources)} files, "
              f"{len(prog.funcs)} functions, {len(enabled)} "
              f"passes, {sum(census.values())} reasoned "
              f"suppression(s): {verdict}")
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
