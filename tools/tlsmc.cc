/**
 * @file
 * tlsmc — bounded exhaustive model checker for the sub-thread TLS
 * protocol (DESIGN.md Section 4.4).
 *
 * Modes:
 *   --sweep   (default) enumerate every canonical interacting program
 *             tuple at the given bounds and explore every interleaving
 *             of each (DPOR unless --no-dpor). Any invariant,
 *             serializability, or liveness violation fails the run and
 *             prints the reproducing schedule.
 *   --bisim   sample random (programs, schedule) pairs and replay each
 *             schedule bit-for-bit through the real TlsMachine via the
 *             ScheduleOracle seam, under the full protocol Auditor.
 *   --mutate=<wrong-start-table|missed-secondary|premature-recycle>
 *             inject the named protocol bug into the model and sweep
 *             until it is caught; exits 0 only if a violation is
 *             found (the regression corpus of the modelcheck tests).
 *   --cross-check  after each DPOR exploration, re-explore naively
 *             and require the same set of terminal outcomes
 *             (empirical soundness check of the reduction).
 *
 * Exit status: 0 success, 1 violation found (or, for --mutate, the
 * seeded bug escaped), 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "verify/modelcheck/bisim.h"
#include "verify/modelcheck/explorer.h"
#include "verify/modelcheck/model.h"
#include "verify/modelcheck/programs.h"

using namespace tlsim;
using namespace tlsim::verify::mc;

namespace {

struct Args
{
    bool sweep = true;
    bool bisim = false;
    bool dpor = true;
    bool crossCheck = false;
    bool quiet = false;
    unsigned epochs = 3;
    unsigned k = 2;
    unsigned lines = 2;
    unsigned len = 2;
    std::uint64_t spacing = 1;
    std::uint64_t tick = 100;
    unsigned samples = 200;
    std::uint64_t seed = 0x5eed;
    std::uint64_t maxSteps = 0;
    bool wholeThread = false; ///< Figure 4(a): no start table
    bool progress = false;    ///< periodic progress lines to stderr
    unsigned shardIndex = 0;  ///< --shard=I/N: explore tuples I mod N
    unsigned shardCount = 1;
    Mutation mutation = Mutation::None;
    std::string jsonPath;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--sweep|--bisim] [options]\n"
        "  --epochs=N --k=K --lines=M --len=L   model bounds\n"
        "  --spacing=S --tick=T                 spawn spacing / tick cost\n"
        "  --whole-thread                       Figure 4(a): no start table\n"
        "  --no-dpor                            naive full enumeration\n"
        "  --cross-check                        DPOR vs naive outcome sets\n"
        "  --mutate=<name>                      seeded-bug mode\n"
        "  --samples=N --seed=S                 bisim sampling\n"
        "  --max-steps=N                        path depth bound\n"
        "  --shard=I/N                          explore tuples I mod N\n"
        "  --progress                           progress lines to stderr\n"
        "  --json=PATH                          write a JSON summary\n"
        "  --quiet\n",
        argv0);
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, const char **out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *out = arg + n + 1;
        return true;
    }
    return false;
}

Args
parse(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *v = nullptr;
        if (std::strcmp(arg, "--sweep") == 0) {
            a.sweep = true;
            a.bisim = false;
        } else if (std::strcmp(arg, "--bisim") == 0) {
            a.bisim = true;
            a.sweep = false;
        } else if (std::strcmp(arg, "--no-dpor") == 0) {
            a.dpor = false;
        } else if (std::strcmp(arg, "--cross-check") == 0) {
            a.crossCheck = true;
        } else if (std::strcmp(arg, "--whole-thread") == 0) {
            a.wholeThread = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            a.quiet = true;
        } else if (std::strcmp(arg, "--progress") == 0) {
            a.progress = true;
        } else if (flagValue(arg, "--shard", &v)) {
            char *end = nullptr;
            a.shardIndex =
                static_cast<unsigned>(std::strtoul(v, &end, 10));
            if (!end || *end != '/')
                usage(argv[0]);
            a.shardCount =
                static_cast<unsigned>(std::strtoul(end + 1, nullptr, 10));
            if (a.shardCount == 0 || a.shardIndex >= a.shardCount)
                usage(argv[0]);
        } else if (flagValue(arg, "--epochs", &v)) {
            a.epochs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flagValue(arg, "--k", &v)) {
            a.k = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flagValue(arg, "--lines", &v)) {
            a.lines = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flagValue(arg, "--len", &v)) {
            a.len = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flagValue(arg, "--spacing", &v)) {
            a.spacing = std::strtoull(v, nullptr, 10);
        } else if (flagValue(arg, "--tick", &v)) {
            a.tick = std::strtoull(v, nullptr, 10);
        } else if (flagValue(arg, "--samples", &v)) {
            a.samples = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flagValue(arg, "--seed", &v)) {
            a.seed = std::strtoull(v, nullptr, 0);
        } else if (flagValue(arg, "--max-steps", &v)) {
            a.maxSteps = std::strtoull(v, nullptr, 10);
        } else if (flagValue(arg, "--json", &v)) {
            a.jsonPath = v;
        } else if (flagValue(arg, "--mutate", &v)) {
            if (std::strcmp(v, "wrong-start-table") == 0)
                a.mutation = Mutation::WrongStartTable;
            else if (std::strcmp(v, "missed-secondary") == 0)
                a.mutation = Mutation::MissedSecondary;
            else if (std::strcmp(v, "premature-recycle") == 0)
                a.mutation = Mutation::PrematureRecycle;
            else
                usage(argv[0]);
        } else {
            usage(argv[0]);
        }
    }
    return a;
}

ModelConfig
modelConfig(const Args &a)
{
    ModelConfig cfg;
    cfg.epochs = a.epochs;
    cfg.k = a.k;
    cfg.lines = a.lines;
    cfg.spacing = a.spacing;
    cfg.tickInsts = a.tick;
    cfg.useStartTable = !a.wholeThread;
    cfg.mutation = a.mutation;
    return cfg;
}

struct SweepTotals
{
    std::uint64_t tuples = 0;
    std::uint64_t transitions = 0;
    std::uint64_t schedules = 0;
    std::uint64_t sleepBlocked = 0;
    std::uint64_t naiveTransitions = 0; ///< cross-check mode only
    bool caught = false;
    ModelViolation violation;
    std::vector<Program> violationPrograms;
};

int
runSweep(const Args &a, SweepTotals &tot)
{
    ModelConfig cfg = modelConfig(a);
    auto families =
        programFamilies(a.epochs, a.len, a.lines, /*interacting=*/true);

    ExploreConfig xcfg;
    xcfg.dpor = a.dpor;
    xcfg.maxSteps = a.maxSteps;
    xcfg.collectOutcomes = a.crossCheck;

    for (std::size_t fi = 0; fi < families.size(); ++fi) {
        if (fi % a.shardCount != a.shardIndex)
            continue;
        const auto &programs = families[fi];
        ++tot.tuples;
        if (a.progress)
            std::fprintf(stderr,
                         "tlsmc sweep: tuple %zu (%llu done), %llu "
                         "transitions, %llu schedules\n",
                         fi,
                         static_cast<unsigned long long>(tot.tuples),
                         static_cast<unsigned long long>(tot.transitions),
                         static_cast<unsigned long long>(tot.schedules));
        ExploreResult res = explore(cfg, programs, xcfg);
        tot.transitions += res.stats.transitions;
        tot.schedules += res.stats.schedulesCompleted;
        tot.sleepBlocked += res.stats.sleepBlocked;
        if (!res.ok()) {
            tot.caught = true;
            tot.violation = res.violations.front();
            tot.violationPrograms = programs;
            return a.mutation == Mutation::None ? 1 : 0;
        }
        if (a.crossCheck && a.dpor) {
            ExploreConfig ncfg = xcfg;
            ncfg.dpor = false;
            ExploreResult naive = explore(cfg, programs, ncfg);
            tot.naiveTransitions += naive.stats.transitions;
            if (!naive.ok()) {
                tot.caught = true;
                tot.violation = naive.violations.front();
                tot.violationPrograms = programs;
                return a.mutation == Mutation::None ? 1 : 0;
            }
            if (naive.outcomes != res.outcomes) {
                tot.caught = true;
                tot.violation = {"dpor.unsound",
                                 "naive and DPOR explorations reach "
                                 "different terminal outcomes",
                                 {}};
                tot.violationPrograms = programs;
                return 1;
            }
        }
    }
    // A seeded mutation that no sweep caught is itself a failure.
    return a.mutation == Mutation::None ? 0 : 1;
}

const char *
opToString(const Op &op)
{
    static char buf[16];
    switch (op.kind) {
      case OpKind::Tick: return "T";
      case OpKind::Load:
        std::snprintf(buf, sizeof buf, "L%u", op.line);
        return buf;
      case OpKind::Store:
        std::snprintf(buf, sizeof buf, "S%u", op.line);
        return buf;
    }
    return "?";
}

void
printPrograms(const std::vector<Program> &programs)
{
    for (std::size_t e = 0; e < programs.size(); ++e) {
        std::fprintf(stderr, "  epoch %zu:", e);
        for (const Op &op : programs[e])
            std::fprintf(stderr, " %s", opToString(op));
        std::fprintf(stderr, "\n");
    }
}

void
writeJson(const Args &a, const SweepTotals &tot, const BisimSweep &bs,
          int status)
{
    std::FILE *f = std::fopen(a.jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "tlsmc: cannot write %s\n",
                     a.jsonPath.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"tlsmc-v1\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"bounds\": {\"epochs\": %u, \"k\": %u, "
                 "\"lines\": %u, \"len\": %u},\n"
                 "  \"dpor\": %s,\n"
                 "  \"mutation\": \"%s\",\n"
                 "  \"tuples\": %llu,\n"
                 "  \"transitions\": %llu,\n"
                 "  \"schedules\": %llu,\n"
                 "  \"naive_transitions\": %llu,\n"
                 "  \"bisim_samples\": %u,\n"
                 "  \"bisim_failures\": %u,\n"
                 "  \"violations\": %d,\n"
                 "  \"status\": %d\n"
                 "}\n",
                 a.bisim ? "bisim" : "sweep",
                 a.epochs, a.k, a.lines, a.len,
                 a.dpor ? "true" : "false", mutationName(a.mutation),
                 static_cast<unsigned long long>(tot.tuples),
                 static_cast<unsigned long long>(tot.transitions),
                 static_cast<unsigned long long>(tot.schedules),
                 static_cast<unsigned long long>(tot.naiveTransitions),
                 bs.samples, bs.failures, tot.caught ? 1 : 0, status);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parse(argc, argv);
    SweepTotals tot;
    BisimSweep bs;
    int status = 0;

    if (a.bisim) {
        if (a.mutation != Mutation::None) {
            std::fprintf(stderr,
                         "tlsmc: --mutate is a model-only mode\n");
            return 2;
        }
        bs = sampleBisim(modelConfig(a), a.samples, a.seed, a.len);
        status = bs.ok() ? 0 : 1;
        if (!a.quiet) {
            std::fprintf(stderr,
                         "tlsmc bisim: %u samples, %llu model steps, "
                         "%llu machine audit checks, %u divergences\n",
                         bs.samples,
                         static_cast<unsigned long long>(bs.modelSteps),
                         static_cast<unsigned long long>(bs.auditChecks),
                         bs.failures);
            if (!bs.ok())
                std::fprintf(stderr, "tlsmc bisim: first failure: %s\n",
                             bs.firstFailure.c_str());
        }
    } else {
        status = runSweep(a, tot);
        if (!a.quiet) {
            std::fprintf(
                stderr,
                "tlsmc sweep: %llu tuples, %llu transitions, "
                "%llu schedules%s\n",
                static_cast<unsigned long long>(tot.tuples),
                static_cast<unsigned long long>(tot.transitions),
                static_cast<unsigned long long>(tot.schedules),
                a.dpor ? " (dpor)" : " (naive)");
            if (tot.caught) {
                std::fprintf(stderr, "tlsmc sweep: violation: %s\n",
                             tot.violation.toString().c_str());
                printPrograms(tot.violationPrograms);
            } else if (a.mutation != Mutation::None) {
                std::fprintf(stderr,
                             "tlsmc sweep: seeded mutation '%s' was "
                             "NOT caught\n",
                             mutationName(a.mutation));
            }
        }
    }

    if (!a.jsonPath.empty())
        writeJson(a, tot, bs, status);
    return status;
}
