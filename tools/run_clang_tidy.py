#!/usr/bin/env python3
"""Run clang-tidy (config: .clang-tidy) over the simulator sources.

Usage: run_clang_tidy.py [--build-dir DIR] [--jobs N] [PATH...]

Lints every .cc/.cpp file under src/, tools/ and bench/ (or just the
PATHs given) against the compile commands of the build directory
(default: ./build; configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON,
which the `lint` ctest target's build tree already does).

Headers under src/verify/ and src/core/ are additionally linted as
standalone translation units (clang-tidy FILE -- -std=c++17 -I src).
HeaderFilterRegex only surfaces a header's diagnostics when some
linted .cc includes it, so protocol-seam headers consumed solely by
the tests (core/schedulehooks.h, core/audithooks.h, ...) would
otherwise never be parsed at all.

Exit status:
  0   clean
  1   findings (clang-tidy diagnostics on stdout)
  2   usage / missing compile_commands.json
  77  clang-tidy is not installed - the ctest `lint` label treats this
      as SKIP (SKIP_RETURN_CODE), so environments without clang keep a
      green suite without silently pretending the lint ran.
"""

import argparse
import multiprocessing
import os
import shutil
import subprocess
import sys

SOURCE_DIRS = ("src", "tools", "bench")
SOURCE_EXTS = (".cc", ".cpp")
# Headers linted as standalone TUs (no compile command needed).
HEADER_DIRS = (os.path.join("src", "verify"),
               os.path.join("src", "core"))
HEADER_EXTS = (".h",)


def find_sources(root, paths):
    if paths:
        return [os.path.abspath(p) for p in paths]
    out = []
    for d in SOURCE_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            out.extend(os.path.join(dirpath, f) for f in sorted(files)
                       if f.endswith(SOURCE_EXTS))
    for d in HEADER_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            out.extend(os.path.join(dirpath, f) for f in sorted(files)
                       if f.endswith(HEADER_EXTS))
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default=None,
                    help="build tree with compile_commands.json "
                         "(default: <repo>/build)")
    ap.add_argument("--jobs", type=int,
                    default=multiprocessing.cpu_count())
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args()

    tidy = shutil.which("clang-tidy")
    if not tidy:
        print("run_clang_tidy: clang-tidy not installed; skipping "
              "(exit 77)", file=sys.stderr)
        return 77

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    build = args.build_dir or os.path.join(root, "build")
    if not os.path.exists(os.path.join(build, "compile_commands.json")):
        print(f"run_clang_tidy: no compile_commands.json in {build}; "
              "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
              file=sys.stderr)
        return 2

    sources = find_sources(root, args.paths)
    if not sources:
        print("run_clang_tidy: no sources found", file=sys.stderr)
        return 2

    failed = False
    # Batch to keep command lines short while amortizing startup.
    batch = max(1, len(sources) // (args.jobs * 4) or 1)
    procs = []

    def reap(block):
        nonlocal failed
        live = []
        for p in procs:
            if not block and p.poll() is None:
                live.append(p)
                continue
            out, _ = p.communicate()
            if p.returncode != 0:
                failed = True
            if out.strip():
                sys.stdout.write(out)
        procs[:] = live

    headers = [s for s in sources if s.endswith(HEADER_EXTS)]
    db_sources = [s for s in sources if not s.endswith(HEADER_EXTS)]
    cmds = [[tidy, "-p", build, "--quiet", *db_sources[i:i + batch]]
            for i in range(0, len(db_sources), batch)]
    # Standalone-TU mode: headers have no compile command, so supply
    # the flags directly instead of consulting the database.
    header_flags = ["--", "-std=c++17", "-I",
                    os.path.join(root, "src"), "-x", "c++"]
    cmds += [[tidy, "--quiet", *headers[i:i + batch], *header_flags]
             for i in range(0, len(headers), batch)]
    for cmd in cmds:
        while len(procs) >= args.jobs:
            reap(block=False)
            if len(procs) >= args.jobs:
                procs[0].wait()
        procs.append(subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True))
    reap(block=True)

    print("run_clang_tidy: " +
          ("FINDINGS (see above)" if failed else
           f"{len(sources)} files clean"))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
