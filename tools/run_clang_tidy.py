#!/usr/bin/env python3
"""Run clang-tidy (config: .clang-tidy) over the simulator sources.

Usage: run_clang_tidy.py [--build-dir DIR] [--jobs N] [PATH...]

Lints every .cc/.cpp file under src/, tools/ and bench/ (or just the
PATHs given) against the compile commands of the build directory
(default: ./build; configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON,
which the `lint` ctest target's build tree already does).

The repo's Python tooling (tools/*.py, tests/lint/*.py) is linted in
the same run: always byte-compiled (py_compile catches syntax errors
before CI ever executes the tool in anger), and additionally checked
with `ruff check` when ruff is on PATH — scoped to the always-wrong
classes (E9 syntax/io, F63 comparison, F7 statement, F82 undefined
name) so a missing ruff never hides a real break and an installed
ruff never argues about style. The Python step runs even when
clang-tidy is absent; a Python failure is exit 1, never the skip.

Headers under src/verify/ and src/core/ are additionally linted as
standalone translation units (clang-tidy FILE -- -std=c++17 -I src).
HeaderFilterRegex only surfaces a header's diagnostics when some
linted .cc includes it, so protocol-seam headers consumed solely by
the tests (core/schedulehooks.h, core/audithooks.h, ...) would
otherwise never be parsed at all.

Exit status:
  0   clean
  1   findings (clang-tidy diagnostics on stdout)
  2   usage / missing compile_commands.json
  77  clang-tidy is not installed AND the Python step was clean - the
      ctest `lint` label treats this as SKIP (SKIP_RETURN_CODE), so
      environments without clang keep a green suite without silently
      pretending the lint ran.
"""

import argparse
import multiprocessing
import os
import py_compile
import shutil
import subprocess
import sys
import tempfile

SOURCE_DIRS = ("src", "tools", "bench")
SOURCE_EXTS = (".cc", ".cpp")
# Headers linted as standalone TUs (no compile command needed).
HEADER_DIRS = (os.path.join("src", "verify"),
               os.path.join("src", "core"))
HEADER_EXTS = (".h",)
# Python tooling linted by lint_python(); ruff checks are limited to
# definite-bug classes so style churn never blocks CI.
PYTHON_DIRS = ("tools", os.path.join("tests", "lint"))
RUFF_SELECT = "E9,F63,F7,F82"


def find_sources(root, paths):
    if paths:
        return [os.path.abspath(p) for p in paths]
    out = []
    for d in SOURCE_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            out.extend(os.path.join(dirpath, f) for f in sorted(files)
                       if f.endswith(SOURCE_EXTS))
    for d in HEADER_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            out.extend(os.path.join(dirpath, f) for f in sorted(files)
                       if f.endswith(HEADER_EXTS))
    return out


def lint_python(root):
    """Byte-compile the repo's Python tooling; ruff on top if present.
    Returns True if everything passed."""
    files = []
    for d in PYTHON_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            files.extend(os.path.join(dirpath, f) for f in sorted(names)
                         if f.endswith(".py"))
    ok = True
    with tempfile.TemporaryDirectory(prefix="pylint") as tmp:
        for f in files:
            try:
                py_compile.compile(f, doraise=True,
                                   cfile=os.path.join(tmp, "scratch.pyc"))
            except py_compile.PyCompileError as e:
                print(e.msg, file=sys.stderr)
                ok = False
    ruff = shutil.which("ruff")
    if ruff:
        proc = subprocess.run(
            [ruff, "check", "--select", RUFF_SELECT, "--quiet", *files],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        if proc.returncode != 0:
            sys.stdout.write(proc.stdout)
            ok = False
    tail = "py_compile+ruff" if ruff else "py_compile"
    print(f"run_clang_tidy: {len(files)} python files ({tail}): " +
          ("clean" if ok else "FINDINGS"))
    return ok


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default=None,
                    help="build tree with compile_commands.json "
                         "(default: <repo>/build)")
    ap.add_argument("--jobs", type=int,
                    default=multiprocessing.cpu_count())
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    # The Python step needs no external tooling, so it runs (and can
    # fail the lint) even where clang-tidy would make us skip.
    python_ok = args.paths or lint_python(root)

    tidy = shutil.which("clang-tidy")
    if not tidy:
        if not python_ok:
            return 1
        print("run_clang_tidy: clang-tidy not installed; skipping "
              "(exit 77)", file=sys.stderr)
        return 77

    build = args.build_dir or os.path.join(root, "build")
    if not os.path.exists(os.path.join(build, "compile_commands.json")):
        print(f"run_clang_tidy: no compile_commands.json in {build}; "
              "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
              file=sys.stderr)
        return 2

    sources = find_sources(root, args.paths)
    if not sources:
        print("run_clang_tidy: no sources found", file=sys.stderr)
        return 2

    failed = False
    # Batch to keep command lines short while amortizing startup.
    batch = max(1, len(sources) // (args.jobs * 4) or 1)
    procs = []

    def reap(block):
        nonlocal failed
        live = []
        for p in procs:
            if not block and p.poll() is None:
                live.append(p)
                continue
            out, _ = p.communicate()
            if p.returncode != 0:
                failed = True
            if out.strip():
                sys.stdout.write(out)
        procs[:] = live

    headers = [s for s in sources if s.endswith(HEADER_EXTS)]
    db_sources = [s for s in sources if not s.endswith(HEADER_EXTS)]
    cmds = [[tidy, "-p", build, "--quiet", *db_sources[i:i + batch]]
            for i in range(0, len(db_sources), batch)]
    # Standalone-TU mode: headers have no compile command, so supply
    # the flags directly instead of consulting the database.
    header_flags = ["--", "-std=c++17", "-I",
                    os.path.join(root, "src"), "-x", "c++"]
    cmds += [[tidy, "--quiet", *headers[i:i + batch], *header_flags]
             for i in range(0, len(headers), batch)]
    for cmd in cmds:
        while len(procs) >= args.jobs:
            reap(block=False)
            if len(procs) >= args.jobs:
                procs[0].wait()
        procs.append(subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True))
    reap(block=True)

    print("run_clang_tidy: " +
          ("FINDINGS (see above)" if failed else
           f"{len(sources)} files clean"))
    return 1 if failed or not python_ok else 0


if __name__ == "__main__":
    sys.exit(main())
