#!/usr/bin/env python3
"""Diff tlsim-bench-v1 JSON reports.

Usage: bench_compare.py [options] BASELINE [BASELINE...] CURRENT

The last path is the current report; every earlier path is a baseline
it is compared against in turn (multi-baseline mode runs the same
pairwise comparison once per baseline). Result rows are matched by
their 'name' field; for every metric present in both rows the absolute
and relative delta is printed. Rows or metrics present on only one
side are reported as such.

Options:
  --max-wall-regression=PCT   exit 2 if CURRENT's wall_seconds exceeds
                              a baseline's by more than PCT percent
  --min-items-ratio=RE:RATIO  perf gate: for every result row whose
                              name matches the regex RE (search, not
                              full match), CURRENT's items_per_second
                              must be at least RATIO times the
                              baseline's, else exit 2. May be given
                              multiple times. A regex that matches no
                              shared row is itself an error (exit 1):
                              a silently-vacuous gate is worse than a
                              failing one.
  --expect-identical          exit 1 unless every shared result metric,
                              simulated_cycles, replay_records, and any
                              'determinism' probe blocks are exactly
                              equal (wall-clock fields and rate fields
                              derived from them are exempt). Used by
                              the golden-equivalence check: replay with
                              and without the conflict oracle must
                              produce the same simulation.
  --require-det               exit 1 unless both reports carry a
                              'determinism' block (i.e. both runs used
                              --det-probe) with jobs_invariant true.
                              The `det` ctest label passes this so a
                              probe that silently stopped being wired
                              cannot fake a passing hash comparison.
  --quiet                     only print problems and the final verdict

Exit status: 0 ok, 1 structural mismatch or --expect-identical
violation, 2 wall-time regression or items-ratio gate failure.
"""

import json
import numbers
import re
import sys

# Host-timing fields: never compared for identity, since two runs of
# the same simulation legitimately differ in wall time.
TIMING_KEYS = {"wall_seconds", "records_per_second"}


def is_num(v):
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: unreadable or invalid JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != "tlsim-bench-v1":
        sys.exit(f"{path}: not a tlsim-bench-v1 report")
    return doc


def rows_by_name(doc, path):
    rows = {}
    for entry in doc.get("results", []):
        name = entry.get("name")
        if not isinstance(name, str):
            sys.exit(f"{path}: result row without a name")
        if name in rows:
            sys.exit(f"{path}: duplicate result name {name!r}")
        rows[name] = {k: v for k, v in entry.items() if k != "name"}
    return rows


def fmt_delta(base, cur):
    delta = cur - base
    if base != 0:
        return f"{base:g} -> {cur:g}  ({delta:+g}, {100 * delta / base:+.2f}%)"
    return f"{base:g} -> {cur:g}  ({delta:+g})"


def compare_determinism(base_path, cur_path, base_doc, cur_doc, *,
                        require_det, quiet):
    """Compare 'determinism' probe blocks; return a list of problems."""
    problems = []
    blocks = {}
    for path, doc in ((base_path, base_doc), (cur_path, cur_doc)):
        det = doc.get("determinism")
        if det is None:
            if require_det:
                problems.append(
                    f"{path}: no 'determinism' block (--require-det "
                    "needs both runs probed with --det-probe)")
            continue
        if not isinstance(det, dict) or \
                not isinstance(det.get("stages"), dict):
            problems.append(f"{path}: malformed 'determinism' block")
            continue
        if det.get("jobs_invariant") is not True:
            problems.append(
                f"{path}: determinism jobs_invariant is "
                f"{det.get('jobs_invariant')!r} (a shard merge in "
                "that run was order-sensitive)")
        blocks[path] = det["stages"]
    if len(blocks) != 2:
        return problems
    base_stages, cur_stages = blocks[base_path], blocks[cur_path]
    for stage in sorted(base_stages.keys() | cur_stages.keys()):
        if stage not in cur_stages:
            problems.append(f"determinism stage {stage!r} only in "
                            "baseline")
        elif stage not in base_stages:
            problems.append(f"determinism stage {stage!r} only in "
                            "current")
        elif base_stages[stage] != cur_stages[stage]:
            problems.append(
                f"determinism stage {stage!r} digest differs: "
                f"{base_stages[stage]} vs {cur_stages[stage]}")
        elif not quiet:
            print(f"  determinism / {stage}: {base_stages[stage]} == "
                  f"{cur_stages[stage]}")
    return problems


def compare_pair(base_path, cur_path, base_doc, cur_doc, *, max_wall_pct,
                 ratio_gates, expect_identical, require_det, quiet):
    """Compare one baseline against the current report; return status."""
    base_rows = rows_by_name(base_doc, base_path)
    cur_rows = rows_by_name(cur_doc, cur_path)

    problems = []
    identical_violations = []
    gate_failures = []
    gate_hits = [0] * len(ratio_gates)

    for name in sorted(base_rows.keys() | cur_rows.keys()):
        if name not in cur_rows:
            problems.append(f"result {name!r} only in baseline")
            continue
        if name not in base_rows:
            problems.append(f"result {name!r} only in current")
            continue
        base, cur = base_rows[name], cur_rows[name]
        for metric in sorted(base.keys() | cur.keys()):
            if metric not in cur:
                problems.append(f"{name}: metric {metric!r} only in baseline")
                continue
            if metric not in base:
                problems.append(f"{name}: metric {metric!r} only in current")
                continue
            b, c = base[metric], cur[metric]
            if not (is_num(b) and is_num(c)):
                problems.append(f"{name}: metric {metric!r} non-numeric")
                continue
            if not quiet:
                print(f"  {name} / {metric}: {fmt_delta(b, c)}")
            if expect_identical and b != c:
                identical_violations.append(
                    f"{name}: {metric} differs ({b!r} vs {c!r})")
        for i, (rx, ratio) in enumerate(ratio_gates):
            if not rx.search(name):
                continue
            gate_hits[i] += 1
            b = base.get("items_per_second")
            c = cur.get("items_per_second")
            if not (is_num(b) and is_num(c)) or b <= 0:
                problems.append(
                    f"{name}: items-ratio gate needs a positive "
                    f"items_per_second on both sides")
                continue
            if c / b < ratio:
                gate_failures.append(
                    f"{name}: items_per_second {c:g} is only "
                    f"{c / b:.2f}x baseline {b:g} "
                    f"(gate requires >= {ratio:g}x)")

    for i, (rx, ratio) in enumerate(ratio_gates):
        if gate_hits[i] == 0:
            problems.append(
                f"items-ratio gate {rx.pattern!r} matched no shared "
                f"result row (vacuous gate)")

    for key in ("simulated_cycles", "replay_records"):
        b, c = base_doc.get(key), cur_doc.get(key)
        if is_num(b) and is_num(c):
            if not quiet:
                print(f"  {key}: {fmt_delta(b, c)}")
            if expect_identical and b != c:
                identical_violations.append(
                    f"{key} differs ({b!r} vs {c!r})")

    if expect_identical or require_det:
        for p in compare_determinism(base_path, cur_path, base_doc,
                                     cur_doc, require_det=require_det,
                                     quiet=quiet):
            identical_violations.append(p)

    wall_b, wall_c = base_doc.get("wall_seconds"), cur_doc.get("wall_seconds")
    if is_num(wall_b) and is_num(wall_c) and not quiet:
        print(f"  wall_seconds: {fmt_delta(wall_b, wall_c)}")

    status = 0
    for p in problems:
        print(f"MISMATCH: {p}", file=sys.stderr)
        status = 1
    for v in identical_violations:
        print(f"NOT IDENTICAL: {v}", file=sys.stderr)
        status = 1
    for g in gate_failures:
        print(f"PERF GATE: {g}", file=sys.stderr)
        status = 2

    if max_wall_pct is not None and is_num(wall_b) and is_num(wall_c):
        if wall_b > 0 and 100 * (wall_c - wall_b) / wall_b > max_wall_pct:
            print(
                f"WALL REGRESSION: {wall_b:g}s -> {wall_c:g}s exceeds "
                f"+{max_wall_pct:g}% budget",
                file=sys.stderr)
            status = 2

    if status == 0:
        verdict = "identical" if expect_identical else "compared"
        print(f"bench_compare: {base_path} vs {cur_path}: {verdict}")
    return status


def main(argv):
    max_wall_pct = None
    ratio_gates = []
    expect_identical = False
    require_det = False
    quiet = False
    paths = []
    for a in argv[1:]:
        if a.startswith("--max-wall-regression="):
            try:
                max_wall_pct = float(a.split("=", 1)[1])
            except ValueError:
                sys.exit(f"bad value in {a!r}")
        elif a.startswith("--min-items-ratio="):
            spec = a.split("=", 1)[1]
            pattern, sep, ratio_s = spec.rpartition(":")
            if not sep:
                sys.exit(f"bad gate {a!r}: expected REGEX:RATIO")
            try:
                rx = re.compile(pattern)
                ratio = float(ratio_s)
            except (re.error, ValueError) as e:
                sys.exit(f"bad gate {a!r}: {e}")
            ratio_gates.append((rx, ratio))
        elif a == "--expect-identical":
            expect_identical = True
        elif a == "--require-det":
            require_det = True
        elif a == "--quiet":
            quiet = True
        elif a in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        elif a.startswith("-"):
            sys.exit(f"unknown option {a!r}")
        else:
            paths.append(a)
    if len(paths) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1

    cur_path = paths[-1]
    cur_doc = load(cur_path)
    status = 0
    for base_path in paths[:-1]:
        base_doc = load(base_path)
        status = max(status,
                     compare_pair(base_path, cur_path, base_doc, cur_doc,
                                  max_wall_pct=max_wall_pct,
                                  ratio_gates=ratio_gates,
                                  expect_identical=expect_identical,
                                  require_det=require_det,
                                  quiet=quiet))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
