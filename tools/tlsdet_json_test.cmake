# ctest script for lint_tlsdet_json: run the tlsdet determinism
# analyzer over the tree with --json (manifests required — the
# real-tree CI configuration), then validate the report with
# check_bench_json.py. Two steps, one test, so a schema drift between
# the two tools fails CI immediately.
#
# Inputs: -DPYTHON=... -DSOURCE_DIR=... -DOUT=...

execute_process(
    COMMAND ${PYTHON} ${SOURCE_DIR}/tools/tlsdet.py
            --root ${SOURCE_DIR} --require-manifests --json ${OUT} -q
    RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR "tlsdet found violations (exit ${lint_rc})")
endif()

execute_process(
    COMMAND ${PYTHON} ${SOURCE_DIR}/tools/check_bench_json.py ${OUT}
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_bench_json rejected the tlsdet report (exit ${check_rc})")
endif()
