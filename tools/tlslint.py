#!/usr/bin/env python3
"""tlslint: project-specific static-analysis checks for the simulator.

Usage: tlslint.py [--root DIR] [--engine auto|libclang|lex]
                  [--check T1,T2,...] [--treat-as RELPATH]
                  [--json FILE] [--list-checks] [-q] [PATH...]

Clang's thread-safety analysis (the TLSIM_THREAD_SAFETY build) proves
lock discipline; these checks enforce the *repo invariants* that no
generic tool knows about:

  T1  spec-metadata mutations stay behind the audited mutators.
      Mutating calls on SpecState (recordLoad/recordStore/clearContext/
      clearThread/recordLoadExposed/reserveLines) and on the victim
      cache (insert/remove/reset/accessLine on a spec*/victim*
      receiver, renameToCommitted, dropOneCommitted) are only allowed
      in the owning modules - core/machine, core/specstate, mem/victim,
      mem/memsys, mem/l2cache - where the AuditSink seam (PR 3)
      observes every mutation. A rogue call site elsewhere would
      mutate speculative state the auditor never sees.

  T2  no direct thread creation outside sim/executor.
      std::thread / std::jthread construction, pthread_create, and
      .detach() anywhere but sim/executor.{h,cc} bypasses the
      work-stealing pool (and its shutdown/exception discipline).

  T3  narrowing casts in the trace decode paths go through
      base/narrow.h. In sim/traceio.* and core/traceindex.*, a
      static_cast to a fixed-width type of <= 32 bits must be spelled
      checkedNarrow<T>() or truncateNarrow<T>(); a raw cast silently
      truncates untrusted file bytes. (Brace-init T{x} is exempt: the
      language already rejects narrowing there.)

  T4  bench binaries use the shared BenchSession prologue.
      A main() under bench/ without BenchSession regresses to the
      hand-rolled argument parsing PR 4 deduplicated.

Suppression: append `// tlslint:allow(Tn): reason` to the flagged
line (or put it alone on the line above). The reason is mandatory; a
bare allow is itself a diagnostic, so the tree never accumulates
unexplained exemptions.

Engines: with the libclang python bindings installed, files are
tokenized by libclang (`--engine=libclang`); otherwise a built-in
C++ lexer produces the same token stream (`--engine=lex`). Both feed
the identical rule matcher; `auto` (default) picks libclang when it
is importable and loadable.

Exit status: 0 clean, 1 violations, 2 usage error.

--json writes a tlsim-bench-v1 report whose "staticanalysis" block
(checks run, files scanned, violations) is validated by
tools/check_bench_json.py, so CI can assert the lint actually ran.
"""

import argparse
import fnmatch
import json
import os
import re
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintsupp  # noqa: E402  (same-directory shared module)
from lintsupp import Diagnostic, Token  # noqa: E402

# ---------------------------------------------------------------------
# Check definitions
# ---------------------------------------------------------------------

CHECK_IDS = ("T1", "T2", "T3", "T4")

# T1: the audited-mutator allowlist (repo-relative, forward slashes).
T1_ALLOWED_FILES = {
    "src/core/machine.cc",
    "src/core/specstate.h",
    "src/core/specstate.cc",
    "src/mem/victim.h",
    "src/mem/victim.cc",
    "src/mem/memsys.h",
    "src/mem/memsys.cc",
    "src/mem/l2cache.h",
    "src/mem/l2cache.cc",
}
# Mutator names distinctive enough to flag on any receiver.
T1_DISTINCT_MUTATORS = {
    "recordLoad", "recordLoadExposed", "recordStore", "clearContext",
    "clearThread", "reserveLines", "renameToCommitted",
    "dropOneCommitted",
}
# Generic names: flagged only when the receiver looks like the
# speculative state or the victim cache.
T1_GENERIC_MUTATORS = {"insert", "remove", "reset", "accessLine"}
T1_RECEIVER_HINTS = ("spec", "victim")
T1_SCOPE_DIRS = ("src/",)

T2_ALLOWED_FILES = {"src/sim/executor.h", "src/sim/executor.cc"}
T2_SCOPE_DIRS = ("src/", "bench/", "tools/")

T3_SCOPE_FILES = {
    "src/sim/traceio.h", "src/sim/traceio.cc",
    "src/core/traceindex.h", "src/core/traceindex.cc",
    # The critical-path oracle re-decodes the same untrusted v4 trace
    # bytes (record ids, line addresses, checkpoint offsets) on its
    # analysis side; narrowing there must go through checkedNarrow<>
    # just like the primary decode path.
    "src/core/critpath/graph.h", "src/core/critpath/graph.cc",
    "src/core/critpath/analyzer.h", "src/core/critpath/analyzer.cc",
    "src/core/critpath/placement.h", "src/core/critpath/placement.cc",
}
T3_NARROW_TYPES = {
    "std::uint8_t", "std::uint16_t", "std::uint32_t",
    "std::int8_t", "std::int16_t", "std::int32_t",
    "uint8_t", "uint16_t", "uint32_t",
    "int8_t", "int16_t", "int32_t",
    "char", "signed char", "unsigned char",
    "short", "unsigned short", "short int", "unsigned short int",
}

T4_SCOPE_DIRS = ("bench/",)

DEFAULT_SCAN_DIRS = ("src", "bench", "tools")
SOURCE_EXTS = (".h", ".cc", ".cpp")

# ---------------------------------------------------------------------
# Tokenizers
# ---------------------------------------------------------------------

# Raw strings and ordinary string/char literals accept the standard
# encoding prefixes (u8, u, U, L): `LR"(...)"` is one literal, not an
# identifier `LR` followed by garbage — mis-lexing it would feed the
# literal's *contents* to the rule matchers as if it were code.
# Digit separators (`1'000'000`) are consumed only when the apostrophe
# is followed by another digit/hex-digit, so a separator can never
# swallow an adjacent char literal and an unmatched quote can never
# swallow the code after it.
_LEX_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstr>(?:u8|u|U|L)?R"
        (?P<delim>[^\s()\\]{0,16})\(.*?\)(?P=delim)")
    | (?P<str>(?:u8|u|U|L)?"(?:\\.|[^"\\\n])*")
    | (?P<char>(?:u8|u|U|L)?'(?:\\.|[^'\\\n])*')
    | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>\.?\d(?:[\w.]|'[0-9a-fA-F]|[eEpP][+-])*)
    | (?P<punct>::|->|\+\+|--|<<|>>|[{}()\[\];,<>=!&|^~?:.*/%+-]|\#)
    """,
    re.VERBOSE | re.DOTALL,
)


def lex_tokens(text):
    """Tokenize C++ with a small lexer: identifiers, punctuation,
    literals and comments, each tagged with its starting line."""
    tokens = []
    pos = 0
    line = 1
    for m in _LEX_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup
        tok = m.group()
        if kind == "comment":
            tokens.append(Token(tok, line, "comment"))
        elif kind in ("rawstr", "str", "char", "num"):
            tokens.append(Token(tok, line, "lit"))
        elif kind == "id":
            tokens.append(Token(tok, line, "id"))
        elif kind == "punct":
            tokens.append(Token(tok, line, "punct"))
        # 'delim' is an internal group of rawstr; never a lastgroup.
    return tokens


def libclang_tokens(path, text):
    """Tokenize with libclang; raises if the bindings are unusable.
    Produces the same Token shape as lex_tokens() so both engines feed
    one rule matcher."""
    import clang.cindex as ci

    index = ci.Index.create()
    tu = index.parse(
        path, args=["-std=c++20", "-fsyntax-only"],
        unsaved_files=[(path, text)],
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    kinds = {
        ci.TokenKind.IDENTIFIER: "id",
        ci.TokenKind.KEYWORD: "id",
        ci.TokenKind.PUNCTUATION: "punct",
        ci.TokenKind.LITERAL: "lit",
        ci.TokenKind.COMMENT: "comment",
    }
    tokens = []
    for tok in tu.cursor.get_tokens():
        kind = kinds.get(tok.kind)
        if kind is None:
            continue
        tokens.append(Token(tok.spelling, tok.location.line, kind))
    return tokens


def make_tokenizer(engine):
    """Resolve the engine choice to (tokenizer, resolved_name)."""
    if engine in ("auto", "libclang"):
        try:
            import clang.cindex as ci
            ci.Index.create()  # verifies libclang itself loads
            return (libclang_tokens, "libclang")
        except Exception as e:  # ImportError, LibclangError, ...
            if engine == "libclang":
                print(f"tlslint: libclang engine unavailable: {e}",
                      file=sys.stderr)
                sys.exit(2)
    return (lambda path, text: lex_tokens(text), "lex")


# ---------------------------------------------------------------------
# Rule matchers (token-stream level, shared by both engines)
# ---------------------------------------------------------------------

def in_scope(relpath, dirs=None, files=None):
    rel = relpath.replace(os.sep, "/")
    if files is not None:
        return rel in files
    return any(rel.startswith(d) for d in dirs)


def check_t1(relpath, tokens, report):
    if not in_scope(relpath, dirs=T1_SCOPE_DIRS):
        return
    if in_scope(relpath, files=T1_ALLOWED_FILES):
        return
    code = [t for t in tokens if t.kind != "comment"]
    for i in range(len(code) - 3):
        recv, dot, meth, paren = code[i:i + 4]
        if dot.text not in (".", "->") or paren.text != "(":
            continue
        if recv.kind != "id" or meth.kind != "id":
            continue
        name = meth.text
        if name in T1_DISTINCT_MUTATORS:
            pass
        elif name in T1_GENERIC_MUTATORS and any(
                h in recv.text.lower() for h in T1_RECEIVER_HINTS):
            pass
        else:
            continue
        report(Diagnostic(
            relpath, meth.line, "T1",
            f"speculative-state mutation `{recv.text}{dot.text}"
            f"{name}(...)` outside the audited mutators "
            "(src/core machine / owning mem module); the AuditSink "
            "seam must observe every SpecState/victim-cache write"))


def check_t2(relpath, tokens, report):
    if not in_scope(relpath, dirs=T2_SCOPE_DIRS):
        return
    if in_scope(relpath, files=T2_ALLOWED_FILES):
        return
    code = [t for t in tokens if t.kind != "comment"]
    for i, tok in enumerate(code):
        if tok.text == "pthread_create":
            report(Diagnostic(
                relpath, tok.line, "T2",
                "direct pthread_create outside sim/executor; route "
                "work through SimExecutor"))
            continue
        if (tok.text == "detach" and i >= 1 and
                code[i - 1].text in (".", "->") and
                i + 1 < len(code) and code[i + 1].text == "("):
            report(Diagnostic(
                relpath, tok.line, "T2",
                "detached thread outside sim/executor; detached "
                "threads escape the pool's shutdown and exception "
                "discipline"))
            continue
        if (tok.text in ("thread", "jthread") and i >= 2 and
                code[i - 1].text == "::" and code[i - 2].text == "std"):
            nxt = code[i + 1].text if i + 1 < len(code) else ""
            # Construction or declaration (std::thread t(...), member,
            # vector<std::thread>); std::thread::hardware_concurrency
            # and std::thread::id are reads, not creations.
            if nxt == "::":
                continue
            report(Diagnostic(
                relpath, tok.line, "T2",
                f"direct std::{tok.text} use outside sim/executor; "
                "fan work out through SimExecutor::parallelFor"))


def check_t3(relpath, tokens, report):
    if not in_scope(relpath, files=T3_SCOPE_FILES):
        return
    code = [t for t in tokens if t.kind != "comment"]
    for i, tok in enumerate(code):
        if tok.text != "static_cast":
            continue
        if i + 1 >= len(code) or code[i + 1].text != "<":
            continue
        # Collect the target-type spelling up to the matching '>'.
        j = i + 2
        depth = 1
        parts = []
        while j < len(code) and depth:
            t = code[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if not depth:
                    break
            parts.append(t)
            j += 1
        spelling = " ".join(parts).replace(" :: ", "::")
        spelling = spelling.replace("const ", "").strip()
        if spelling in T3_NARROW_TYPES:
            report(Diagnostic(
                relpath, tok.line, "T3",
                f"raw narrowing static_cast<{spelling}> in a trace "
                "decode path; use checkedNarrow<>/truncateNarrow<> "
                "from base/narrow.h so truncation of untrusted bytes "
                "is checked or explicit"))


def check_t4(relpath, tokens, report):
    if not in_scope(relpath, dirs=T4_SCOPE_DIRS):
        return
    code = [t for t in tokens if t.kind != "comment"]
    main_line = None
    has_session = False
    for i, tok in enumerate(code):
        if tok.text == "BenchSession":
            has_session = True
        if (tok.text == "main" and i >= 1 and code[i - 1].text == "int"
                and i + 1 < len(code) and code[i + 1].text == "("):
            main_line = tok.line
    if main_line is not None and not has_session:
        report(Diagnostic(
            relpath, main_line, "T4",
            "bench main() without BenchSession; use the shared "
            "prologue/epilogue from bench/benchutil.h (argument "
            "parsing, executor sizing, tlsim-bench-v1 report)"))


CHECKS = {
    "T1": check_t1,
    "T2": check_t2,
    "T3": check_t3,
    "T4": check_t4,
}


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

def scan_file(path, relpath, tokenizer, enabled, diags, census):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        diags.append(Diagnostic(relpath, 0, "io", str(e)))
        return 0
    tokens = tokenizer(path, text)
    lines = text.splitlines()
    supp = lintsupp.Suppressions(relpath, tokens, lines, "tlslint")
    diags.extend(supp.diags)
    lintsupp.merge_census(census, supp.by_check)

    def report(d):
        if not supp.suppresses(d.line, d.check):
            diags.append(d)

    for check in enabled:
        CHECKS[check](relpath, tokens, report)
    return supp.count


def find_sources(root, paths):
    if paths:
        return [(os.path.abspath(p),
                 os.path.relpath(os.path.abspath(p), root))
                for p in paths]
    out = []
    for d in DEFAULT_SCAN_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            for f in sorted(files):
                if f.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, f)
                    out.append((full, os.path.relpath(full, root)))
    return out


def write_json(path, engine, enabled, files_scanned, per_check,
               census, wall):
    violations = sum(per_check.values())
    doc = {
        "schema": "tlsim-bench-v1",
        "bench": "tlslint",
        "quick": False,
        "jobs": 1,
        "wall_seconds": wall,
        "simulated_cycles": 0,
        "staticanalysis": {
            "engine": engine,
            "checks_run": len(enabled),
            "files_scanned": files_scanned,
            "violations": violations,
            # Combined census: reasoned allows for BOTH tools' grammars
            # seen in the scanned files, keyed by check id (the
            # tlslint T* and tlsa A* namespaces are disjoint).
            "suppressions": sum(census.values()),
            "suppressions_by_check": dict(sorted(census.items())),
        },
        "results": [
            {"name": c, "violations": per_check.get(c, 0)}
            for c in sorted(set(enabled) | set(per_check))
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(
        description="project-specific static-analysis checks")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--engine", default="auto",
                    choices=("auto", "libclang", "lex"))
    ap.add_argument("--check", default=None,
                    help="comma-separated subset of checks "
                         "(default: all)")
    ap.add_argument("--treat-as", default=None, metavar="RELPATH",
                    help="scope rules as if the (single) input file "
                         "lived at this repo-relative path (fixture "
                         "tests)")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help="write a tlsim-bench-v1 report with a "
                         "'staticanalysis' block")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args()

    if args.list_checks:
        for c in CHECK_IDS:
            print(c)
        return 0

    if args.check:
        enabled = [c.strip() for c in args.check.split(",") if c.strip()]
        bad = [c for c in enabled if c not in CHECKS]
        if bad:
            print(f"tlslint: unknown check(s): {', '.join(bad)}",
                  file=sys.stderr)
            return 2
    else:
        enabled = list(CHECK_IDS)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)

    sources = find_sources(root, args.paths)
    if not sources:
        print("tlslint: no sources found", file=sys.stderr)
        return 2
    if args.treat_as:
        if len(sources) != 1:
            print("tlslint: --treat-as needs exactly one input file",
                  file=sys.stderr)
            return 2
        sources = [(sources[0][0], args.treat_as)]

    start = time.monotonic()
    tokenizer, engine = make_tokenizer(args.engine)
    diags = []
    suppressions = 0
    census = {}
    for full, rel in sources:
        suppressions += scan_file(full, rel, tokenizer, enabled, diags,
                                  census)

    diags.sort(key=lambda d: (d.path, d.line))
    per_check = {}
    for d in diags:
        per_check[d.check] = per_check.get(d.check, 0) + 1
        if not args.quiet:
            print(d)

    if args.json:
        write_json(args.json, engine, enabled, len(sources), per_check,
                   census, time.monotonic() - start)

    if not args.quiet:
        verdict = (f"{len(diags)} violation(s)" if diags else "clean")
        print(f"tlslint[{engine}]: {len(sources)} files, "
              f"{len(enabled)} checks, {suppressions} reasoned "
              f"suppression(s): {verdict}")
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
