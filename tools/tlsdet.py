#!/usr/bin/env python3
"""tlsdet: whole-program determinism analysis for the simulator.

Usage: tlsdet.py [--root DIR] [--engine auto|libclang|lex]
                 [--check D1,D2,...] [--json FILE]
                 [--require-manifests] [--list-checks] [-q]

The repo's load-bearing guarantee is that every result stream — the
figure/table rows, the golden stdout, the bench JSON — is identical
under --jobs=N, pipelining and SIMD dispatch. The golden ctest label
*observes* that on a few configurations; tlsdet is the fourth
static-analysis layer (tslint -> tlsa -> this) and *proves the
discipline* that makes it hold: it reuses tlsa's program model
(function definitions, member-typed call resolution, call closure) and
walks the closure reachable from the declared result sinks in
tools/detsinks.txt, rejecting every construct whose value depends on
something a re-run does not reproduce.

  D1  ordered-output discipline.
      On a sink path: no iteration over std::unordered_* containers
      (bucket order depends on libstdc++ version and insertion
      history), no pointer-keyed associative containers (addresses
      vary run to run), and no raw std::sort with a hand-written
      comparator (unspecified tie order). The allowlisted spellings
      live in base/detorder.h: OrderedView/OrderedKeys materialize a
      canonical order, canonicalSort sorts by a total key projection.

  D2  environment taint.
      Wall-clock reads (chrono clocks, time, gettimeofday), random
      sources (rand, random_device), getenv, thread identities and
      pointer-to-integer conversions are nondeterministic inputs; on a
      sink path they are errors unless routed through the
      stats::GlobalCounters seam (whose consumers are declared
      nondeterministic, e.g. wall_seconds) or suppressed with a
      reasoned tlsdet:allow(D2).

  D3  parallel-reduction order.
      A compound assignment to a shared variable inside an executor
      task (parallelFor/pipeline argument) reduces in completion
      order. Float/double accumulation there is an error — collect
      per-index slots and det::orderedReduce after the barrier.
      Integer reductions are commutative only if *declared* so:
      `// tlsdet:commutative(var): reason`.

  D4  shard-merge commutativity.
      Functions named in tools/detmergers.txt claim order-insensitive
      merging. tlsdet checks the claim structurally (no appends to
      order-carrying containers, no non-commutative -=//= folds, no
      float accumulation) and requires each entry to appear in the
      generated permutation property test (tests/det/), which runs
      every declared merger over shuffled inputs at ctest time.

The runtime cross-check is --det-probe (base/dethash.h): benches hash
the canonical result stream per stage and the `det` ctest label
compares the digests across --jobs=1/N, --force-scalar and pipelined
runs; tlsdet is the static side of the same contract.

Sink closure: the functions listed in tools/detsinks.txt, their
direct callers (the aggregation loops that feed them), and everything
those reach through resolved calls. base/detorder.h and base/dethash.h
implement the allowlisted spellings and are exempt from D1/D2 on their
own bodies.

Suppression: `// tlsdet:allow(Dn): reason` (shared grammar with
tlslint/tlsa via tools/lintsupp.py; a bare allow is a hard error).

Manifests: tools/detsinks.txt (D1-D3 roots) and tools/detmergers.txt
(D4 subjects), resolved relative to --root so fixture mini-repos carry
their own. Without --require-manifests a missing file skips the
passes that need it; the CI run on the real tree requires both.

Exit status: 0 clean, 1 violations, 2 usage error.
--json writes a tlsim-bench-v1 report whose `staticanalysis` block is
validated by tools/check_bench_json.py.
"""

import argparse
import json
import os
import re
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintsupp  # noqa: E402
import tlslint  # noqa: E402  (shared tokenizers: lex + libclang)
import tlsa  # noqa: E402  (shared program model + call resolution)
from lintsupp import Diagnostic  # noqa: E402

CHECK_IDS = ("D1", "D2", "D3", "D4")

#: The allowlisted-helper implementations: their own internals (the
#: stable_sort inside canonicalSort, the mixers inside dethash) are
#: the blessed spellings, not violations.
HELPER_FILES = {"src/base/detorder.h", "src/base/dethash.h"}

#: The declared-nondeterminism seam: values routed through
#: GlobalCounters are either deterministic counters or feed fields the
#: schema declares timing-only (wall_seconds, records_per_second).
D2_SEAM_FILES = {"src/base/stats.h", "src/base/stats.cc"}

UNORDERED = {"unordered_map", "unordered_set",
             "unordered_multimap", "unordered_multiset"}
ASSOC = UNORDERED | {"map", "set", "multimap", "multiset"}

ORDERED_WRAPPERS = {"OrderedView", "OrderedKeys"}

CLOCK_QUALS = {"steady_clock", "system_clock",
               "high_resolution_clock"}
ENV_CALLS = {"clock_gettime", "gettimeofday", "getenv", "rand",
             "srand", "random", "drand48", "time"}
ADDR_INT_TYPES = {"uintptr_t", "intptr_t", "size_t", "uint64_t",
                  "u64"}

FLOAT_TYPES = {"float", "double"}
EXECUTORS = {"parallelFor", "pipeline"}

#: `// tlsdet:commutative(var): reason` — declares an integer
#: cross-task reduction commutative. The reason is mandatory, like the
#: allow grammar: an undeclared or unreasoned reduction stays a D3.
COMM_RE = re.compile(r"tlsdet:\s*commutative\(\s*(?P<var>\w+)\s*\)"
                     r"\s*:\s*(?P<reason>\S.*)")


# --- per-file declaration facts ------------------------------------------

class FileFacts:
    """Token-scan facts tlsdet needs beyond tlsa's model: associative-
    container declarations (with pointer-key detection), float/double
    variable names, and commutativity declarations."""

    def __init__(self):
        self.assoc = {}        # var -> (container, line, ptr_key)
        self.float_vars = set()
        self.commutative = {}  # var -> line of reasoned declaration


def scan_file_facts(fm):
    facts = FileFacts()
    code = fm.code
    n = len(code)
    for i in range(n):
        t = code[i].text
        if (t == "std" and i + 2 < n and code[i + 1].text == "::"
                and code[i + 2].text in ASSOC):
            j = i + 3
            ptr = False
            if j < n and code[j].text == "<":
                close = tlsa._match_forward(code, j, "<", ">")
                depth = 0
                for k in range(j + 1, close):
                    tk = code[k].text
                    if tk in ("<", "("):
                        depth += 1
                    elif tk in (">", ")"):
                        depth -= 1
                    elif tk == "," and depth == 0:
                        break  # pointer *keys* are the hazard; a
                        # pointer mapped value never orders anything
                    elif tk == "*" and depth == 0:
                        ptr = True
                j = close + 1
            if j < n and code[j].kind == "id":
                facts.assoc[code[j].text] = \
                    (code[i + 2].text, code[j].line, ptr)
        elif t in FLOAT_TYPES and i + 1 < n:
            j = i + 1
            while j < n and code[j].text in ("*", "&", "const"):
                j += 1
            if j < n and code[j].kind == "id" and \
                    code[j].text not in tlsa.KEYWORDS:
                facts.float_vars.add(code[j].text)
    for tok in fm.tokens:
        if tok.kind == "comment":
            m = COMM_RE.search(tok.text)
            if m:
                facts.commutative[m.group("var")] = tok.line
    return facts


# --- manifests -----------------------------------------------------------

def load_manifest(path):
    """One function qual per line, `# reason` comments; None if the
    file is absent (tools/detsinks.txt, tools/detmergers.txt)."""
    if not os.path.exists(path):
        return None
    entries = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if line:
                entries.append(line)
    return entries


# --- sink closure --------------------------------------------------------

def sink_closure(prog, sinks, report):
    """FuncDef-id set: declared sinks, their direct callers (the
    aggregation loops that feed them), and everything reachable from
    either through resolved calls. Keyed by object identity, not
    qual: every bench binary defines a `main`, and the per-binary
    mains must not share one call list."""
    resolved = {id(fn): [prog.resolve(c, fn) for c in fn.calls]
                for fn in prog.funcs}
    known = {q for q in sinks if q in prog.by_qual}
    for q in sinks:
        if q not in known:
            report(Diagnostic(
                "tools/detsinks.txt", 0, "D1",
                f"detsinks.txt names unknown function `{q}`"))
    sink_fns = [fn for fn in prog.funcs if fn.qual in known]
    sink_ids = {id(fn) for fn in sink_fns}
    closure = dict((id(fn), fn) for fn in sink_fns)
    for fn in prog.funcs:
        if id(fn) not in closure and \
                any(r is not None and id(r) in sink_ids
                    for r in resolved[id(fn)]):
            closure[id(fn)] = fn
    work = list(closure.values())
    while work:
        fn = work.pop()
        for callee in resolved[id(fn)]:
            if callee is not None and id(callee) not in closure:
                closure[id(callee)] = callee
                work.append(callee)
    return set(closure), resolved


# --- token helpers -------------------------------------------------------

def _compound_op(code, k):
    """Detect `<lhs> <op>= ...` at k for both engines: libclang lexes
    `+=` as one token, the built-in lexer as '+' '='. Returns
    (op_char, index of last lhs token) or (None, None)."""
    t = code[k].text
    if len(t) == 2 and t[1] == "=" and t[0] in "+-*/|&^":
        return t[0], k - 1
    if (t == "=" and k >= 1 and len(code[k - 1].text) == 1
            and code[k - 1].text in "+-*/|&^"):
        return code[k - 1].text, k - 2
    return None, None


def _range_for_colon(code, i, close):
    """For a `for` at i with parens closing at `close`, return the
    index of the range-for ':' (depth 1, not part of '::'), or None
    for a classic three-clause for."""
    depth = 0
    for k in range(i + 1, close + 1):
        tk = code[k].text
        if tk in ("(", "[", "{"):
            depth += 1
        elif tk in (")", "]", "}"):
            depth -= 1
        elif tk == ";" and depth == 1:
            return None
        elif (tk == ":" and depth == 1
              and code[k - 1].text != ":"
              and (k + 1 > close or code[k + 1].text != ":")):
            return k
    return None


# --- passes --------------------------------------------------------------

def check_d1(prog, facts_of, closure, report):
    closure_files = {fn.relpath for fn in prog.funcs
                     if id(fn) in closure}
    closure_stems = {os.path.splitext(rel)[0]
                     for rel in closure_files}

    # Pointer-keyed associative containers: flagged at the
    # declaration, in any file whose stem (header or impl) owns a
    # sink-path function — the map's ordering hazard outlives the one
    # function that happens to touch it.
    for rel in sorted(facts_of):
        if rel in HELPER_FILES:
            continue
        if os.path.splitext(rel)[0] not in closure_stems:
            continue
        for var, (container, line, ptr) in sorted(
                facts_of[rel].assoc.items()):
            if ptr:
                report(Diagnostic(
                    rel, line, "D1",
                    f"`std::{container}` `{var}` is keyed by a "
                    "pointer on a result path: addresses vary run to "
                    "run, so any iteration or comparison order over "
                    "it is irreproducible; key by a stable id"))

    for fn in prog.funcs:
        if id(fn) not in closure or fn.relpath in HELPER_FILES:
            continue
        lo, hi = fn.body
        if lo is None or hi is None:
            continue
        fm = prog.files[fn.relpath]
        facts = facts_of[fn.relpath]
        unordered = {v for v, (c, _, _) in facts.assoc.items()
                     if c in UNORDERED}
        code = fm.code
        i = lo
        while i < hi:
            t = code[i].text
            if t == "for" and i + 1 < hi and \
                    code[i + 1].text == "(":
                close = tlsa._match_forward(code, i + 1, "(", ")")
                colon = _range_for_colon(code, i, close)
                if colon is not None:
                    span = code[colon + 1:close]
                    names = {tk.text for tk in span}
                    if not names & ORDERED_WRAPPERS:
                        for tk in span:
                            if tk.text in unordered:
                                report(Diagnostic(
                                    fn.relpath, tk.line, "D1",
                                    f"iteration over "
                                    f"`std::"
                                    f"{facts.assoc[tk.text][0]}` "
                                    f"`{tk.text}` in "
                                    f"`{fn.qual}` on a result path: "
                                    "bucket order is not "
                                    "reproducible; wrap in "
                                    "det::OrderedView/OrderedKeys "
                                    "(base/detorder.h)"))
                                break
                    i = colon + 1
                    continue
                i = i + 2
                continue
            # `.begin()` starts an iteration (`find() != end()` is an
            # order-independent lookup, so bare `.end()` is fine).
            if t in ("begin", "cbegin") and \
                    i + 1 < hi and code[i + 1].text == "(" and \
                    i >= 2 and code[i - 1].text in (".", "->"):
                recv = code[i - 2].text
                if recv in unordered:
                    report(Diagnostic(
                        fn.relpath, code[i].line, "D1",
                        f"`{recv}.{t}()` in `{fn.qual}` iterates a "
                        f"`std::{facts.assoc[recv][0]}` on a result "
                        "path: bucket order is not reproducible; "
                        "wrap in det::OrderedView/OrderedKeys"))
            if t in ("sort", "stable_sort") and i + 1 < hi and \
                    code[i + 1].text == "(":
                close = tlsa._match_forward(code, i + 1, "(", ")")
                depth = 0
                commas = 0
                for k in range(i + 2, close):
                    tk = code[k].text
                    if tk in ("(", "[", "{"):
                        depth += 1
                    elif tk in (")", "]", "}"):
                        depth -= 1
                    elif tk == "," and depth == 0:
                        commas += 1
                if commas >= 2:
                    report(Diagnostic(
                        fn.relpath, code[i].line, "D1",
                        f"raw std::{t} with a hand-written "
                        f"comparator in `{fn.qual}` on a result "
                        "path: equal elements land in unspecified "
                        "order; use det::canonicalSort with a total "
                        "key projection (base/detorder.h)"))
                i = close + 1
                continue
            i += 1


def check_d2(prog, closure, report):
    for fn in prog.funcs:
        if id(fn) not in closure:
            continue
        if fn.relpath in D2_SEAM_FILES or fn.relpath in HELPER_FILES:
            continue
        remedy = ("; route it through stats::GlobalCounters (the "
                  "declared-nondeterministic seam) or justify with "
                  "tlsdet:allow(D2)")
        for cs in fn.calls:
            what = None
            if cs.name == "now" and set(cs.quals) & CLOCK_QUALS:
                what = "wall-clock read"
            elif cs.name in ENV_CALLS and not cs.recv and \
                    (not cs.quals or cs.quals[-1] == "std"):
                what = f"environment read `{cs.name}()`"
            elif cs.name == "random_device":
                what = "hardware entropy (`std::random_device`)"
            elif cs.name == "get_id" and \
                    ("this_thread" in cs.quals or cs.recv):
                what = "thread identity"
            if what:
                report(Diagnostic(
                    fn.relpath, cs.line, "D2",
                    f"{what} in `{fn.qual}` flows into a result "
                    f"path{remedy}"))
        lo, hi = fn.body
        if lo is None or hi is None:
            continue
        code = prog.files[fn.relpath].code
        for k in range(lo, hi):
            if code[k].text == "reinterpret_cast" and k + 1 < hi \
                    and code[k + 1].text == "<":
                close = tlsa._match_forward(code, k + 1, "<", ">")
                inner = {c.text for c in code[k + 2:close]}
                if inner & ADDR_INT_TYPES:
                    report(Diagnostic(
                        fn.relpath, code[k].line, "D2",
                        f"pointer value converted to an integer in "
                        f"`{fn.qual}` on a result path: addresses "
                        f"vary run to run{remedy}"))


def check_d3(prog, facts_of, closure, report):
    for fn in prog.funcs:
        if id(fn) not in closure or fn.relpath in HELPER_FILES:
            continue
        fm = prog.files[fn.relpath]
        facts = facts_of[fn.relpath]
        code = fm.code
        for cs in fn.calls:
            if cs.name not in EXECUTORS:
                continue
            if cs.idx + 1 >= len(code) or \
                    code[cs.idx + 1].text != "(":
                continue
            close = tlsa._match_forward(code, cs.idx + 1, "(", ")")
            span = range(cs.idx + 2, close)
            # Names *declared* inside the task body are task-local:
            # `u64 h = 0; h += ...` is private accumulation.
            local = set()
            for k in span:
                if (code[k].kind == "id"
                        and code[k].text not in tlsa.KEYWORDS
                        and k >= 1 and code[k - 1].kind == "id"
                        and code[k - 1].text != "return"):
                    local.add(code[k].text)
            for k in span:
                op, lhs = _compound_op(code, k)
                if op is None or lhs < 0:
                    continue
                if code[lhs].kind != "id":
                    continue  # `slots[i] += x`: per-index slot, the
                    # pattern orderedReduce folds after the barrier
                name = code[lhs].text
                if name in local or name in tlsa.KEYWORDS:
                    continue
                if name in facts.float_vars:
                    report(Diagnostic(
                        fn.relpath, code[lhs].line, "D3",
                        f"float accumulation `{name} {op}= ...` "
                        f"inside an executor task in `{fn.qual}`: "
                        "completion order changes the sum; collect "
                        "per-index slots and det::orderedReduce "
                        "after the barrier"))
                elif name not in facts.commutative:
                    report(Diagnostic(
                        fn.relpath, code[lhs].line, "D3",
                        f"cross-task reduction `{name} {op}= ...` "
                        f"in `{fn.qual}` is not declared "
                        "commutative; add `// tlsdet:commutative("
                        f"{name}): <why>` if it is, or reduce "
                        "index-ordered slots after the barrier"))


def check_d4(prog, facts_of, mergers, root, report):
    corpus = ""
    det_dir = os.path.join(root, "tests", "det")
    if os.path.isdir(det_dir):
        for f in sorted(os.listdir(det_dir)):
            if f.endswith((".cc", ".cpp", ".h")):
                with open(os.path.join(det_dir, f),
                          encoding="utf-8", errors="replace") as fh:
                    corpus += fh.read()
    for qual in mergers:
        fn = prog.by_qual.get(qual)
        if fn is None:
            report(Diagnostic(
                "tools/detmergers.txt", 0, "D4",
                f"detmergers.txt names unknown function `{qual}`"))
            continue
        facts = facts_of[fn.relpath]
        lo, hi = fn.body
        code = prog.files[fn.relpath].code
        if lo is not None and hi is not None:
            for k in range(lo, hi):
                t = code[k].text
                if t in ("push_back", "emplace_back") and \
                        k + 1 < hi and code[k + 1].text == "(":
                    report(Diagnostic(
                        fn.relpath, code[k].line, "D4",
                        f"declared-commutative merger `{qual}` "
                        "appends to an order-carrying container: "
                        "shard arrival order becomes result order"))
                op, lhs = _compound_op(code, k)
                if op in ("-", "/") and lhs >= 0:
                    report(Diagnostic(
                        fn.relpath, code[k].line, "D4",
                        f"declared-commutative merger `{qual}` "
                        f"folds with non-commutative `{op}=`"))
                elif op == "+" and lhs >= 0 and \
                        code[lhs].kind == "id" and \
                        code[lhs].text in facts.float_vars:
                    report(Diagnostic(
                        fn.relpath, code[k].line, "D4",
                        f"declared-commutative merger `{qual}` "
                        "accumulates a float: addition does not "
                        "associate, so shard order changes the sum"))
        if qual not in corpus:
            report(Diagnostic(
                fn.relpath, fn.line, "D4",
                f"merge function `{qual}` has no permutation "
                "property test: add it to the registry in "
                "tests/det/merge_perm_test.cc (d4-untested)"))


# --- driver --------------------------------------------------------------

def write_json(path, engine, enabled, files_scanned, per_check,
               census, wall):
    doc = {
        "schema": "tlsim-bench-v1",
        "bench": "tlsdet",
        "quick": False,
        "jobs": 1,
        "wall_seconds": wall,
        "simulated_cycles": 0,
        "staticanalysis": {
            "engine": engine,
            "checks_run": len(enabled),
            "files_scanned": files_scanned,
            "violations": sum(per_check.values()),
            "suppressions": sum(census.values()),
            "suppressions_by_check": dict(sorted(census.items())),
        },
        "results": [
            {"name": c, "violations": per_check.get(c, 0)}
            for c in sorted(set(enabled) | set(per_check))
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(
        description="whole-program determinism analysis")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--engine", default="auto",
                    choices=("auto", "libclang", "lex"))
    ap.add_argument("--check", default=None,
                    help="comma-separated subset of passes "
                         "(default: all)")
    ap.add_argument("--json", default=None, metavar="FILE")
    ap.add_argument("--require-manifests", action="store_true",
                    help="missing detsinks.txt/detmergers.txt is an "
                         "error (the real-tree CI configuration)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for c in CHECK_IDS:
            print(c)
        return 0

    if args.check:
        enabled = [c.strip() for c in args.check.split(",")
                   if c.strip()]
        bad = [c for c in enabled if c not in CHECK_IDS]
        if bad:
            print(f"tlsdet: unknown check(s): {', '.join(bad)}",
                  file=sys.stderr)
            return 2
    else:
        enabled = list(CHECK_IDS)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)

    sources = tlsa.find_sources(root)
    if not sources:
        print("tlsdet: no sources found", file=sys.stderr)
        return 2

    start = time.monotonic()
    tokenizer, engine = tlslint.make_tokenizer(args.engine)

    files = {}
    supp_of = {}
    diags = []
    census = {}
    facts_of = {}
    for full, rel in sources:
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            diags.append(Diagnostic(rel, 0, "io", str(e)))
            continue
        tokens = tokenizer(full, text)
        lines = text.splitlines()
        files[rel] = tlsa.build_file_model(rel, tokens, lines)
        facts_of[rel] = scan_file_facts(files[rel])
        supp = lintsupp.Suppressions(rel, tokens, lines, "tlsdet")
        supp_of[rel] = supp
        diags.extend(supp.diags)
        lintsupp.merge_census(census, supp.by_check)

    prog = tlsa.Program(files)

    def report(d):
        supp = supp_of.get(d.path)
        if supp is None or not supp.suppresses(d.line, d.check):
            diags.append(d)

    sinks = load_manifest(os.path.join(root, "tools",
                                       "detsinks.txt"))
    mergers = load_manifest(os.path.join(root, "tools",
                                         "detmergers.txt"))
    if sinks is None and args.require_manifests:
        report(Diagnostic(
            "tools/detsinks.txt", 0, "D1",
            "missing manifest: declare the result sinks D1-D3 "
            "analyze from (--require-manifests)"))
    if mergers is None and args.require_manifests:
        report(Diagnostic(
            "tools/detmergers.txt", 0, "D4",
            "missing manifest: declare the shard-merge functions "
            "(or none) explicitly (--require-manifests)"))

    if sinks is not None:
        closure, _ = sink_closure(prog, sinks, report)
        if "D1" in enabled:
            check_d1(prog, facts_of, closure, report)
        if "D2" in enabled:
            check_d2(prog, closure, report)
        if "D3" in enabled:
            check_d3(prog, facts_of, closure, report)
    if mergers is not None and "D4" in enabled:
        check_d4(prog, facts_of, mergers, root, report)

    diags.sort(key=lambda d: (d.path, d.line, d.check, d.message))
    seen = set()
    uniq = []
    for d in diags:
        key = (d.path, d.line, d.check, d.message)
        if key not in seen:
            seen.add(key)
            uniq.append(d)
    diags = uniq
    per_check = {}
    for d in diags:
        per_check[d.check] = per_check.get(d.check, 0) + 1
        if not args.quiet:
            print(d)

    if args.json:
        write_json(args.json, engine, enabled, len(sources),
                   per_check, census, time.monotonic() - start)

    if not args.quiet:
        verdict = (f"{len(diags)} violation(s)" if diags else "clean")
        print(f"tlsdet[{engine}]: {len(sources)} files, "
              f"{len(prog.funcs)} functions, {len(enabled)} passes, "
              f"{sum(census.values())} reasoned suppression(s): "
              f"{verdict}")
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
