#!/usr/bin/env python3
"""tlsa: whole-program semantic static analysis for the simulator.

Usage: tlsa.py [--root DIR] [--engine auto|libclang|lex]
               [--check A1,A2,...] [--json FILE] [--require-manifests]
               [--list-checks] [-q]

tlslint (tools/tlslint.py, PR 5) matches token patterns file by file;
tlsa builds a *program model* — function definitions with qualified
names, a resolved call graph, lock-acquisition scopes, and per-function
data flow — and checks properties no single file can show:

  A1  static deadlock detection.
      Every `MutexLock`/`UniqueLock` acquisition (base/sync.h) is
      attributed to a lock identity (Class::member, or the factory
      method for registry-handed locks such as StemLocks::forStem()).
      Nesting — directly, or by calling a function whose transitive
      may-acquire set is non-empty while a lock is held — creates an
      ordering edge. tlsa fails on: a cycle among edges (including a
      self-edge: re-acquiring a non-recursive Mutex through a call
      chain), an edge that contradicts a `B < A` pair declared in
      tools/lockorder.txt (a1-order), and an edge the lock-order file
      does not declare at all (a1-undeclared) — so every new nesting
      must be consciously written down in one canonical order.

  A2  audit-seam reachability.
      The speculative-state mutator primitives (the T1 vocabulary:
      recordLoad/recordStore/clearContext/... plus spec*/victim*
      insert/remove/reset/accessLine and start-table writes) must be
      reachable from outside the audited modules ONLY through entry
      points declared in tools/auditseam.txt, each of which must call
      an AuditSink hook (onRunStart/onEpochStart/onSpawn/onAccess/
      onCommit/onSquash or refreshAuditView) or be declared
      `audit=none` with a reason. Diagnostics: a2-unaudited-mutator
      (a primitive call in a function outside the audited modules —
      one indirection does not hide it from the call graph),
      a2-undeclared-entry (an external call lands on an audited
      function that reaches a primitive but is not in the manifest),
      a2-uninstrumented-entry (a declared entry whose body never
      touches the audit seam), a2-unknown-entry (a manifest line
      naming no known function).

  A3  hot-path allocation discipline.
      Functions marked TLSIM_HOT (base/hotpath.h) and everything
      reachable from them through resolved calls must be free of
      `new`, malloc-family calls, push_back/emplace_back on receivers
      that are never `reserve()`d, and node-based-container mutations
      (std::map/set/list/unordered_*), preserving PR 6's arena/pool
      wins against refactors. A `tlsa:allow(A3): reason` on a call
      site prunes traversal into a genuinely cold callee.

  A4  input-taint narrowing.
      Inside the trace decode scope (sim/traceio, sim/varint,
      core/traceindex), values produced by varint::decodeOne/
      decodeBlock — untrusted file bytes — must not reach an array
      subscript or a shift amount without first passing through
      base/narrow.h (checkedNarrow/truncateNarrow) or an explicit
      bounds comparison. This is tlslint's T3 generalized from cast
      spelling to actual data flow.

Engines: identical to tlslint — libclang tokenization when the python
bindings are importable, the built-in lexer otherwise; both feed the
same model builder, so results match token-for-token. The semantic
model itself is token-derived in both engines (see DESIGN.md §4.8 for
the capability matrix and the known approximations: unresolved calls
— virtual/function-pointer/ambiguous overloads — contribute no edges).

Suppression: `// tlsa:allow(An): reason` (shared grammar with
tlslint via tools/lintsupp.py; a bare allow from either tool's grammar
is a hard error here too).

Manifests: tools/lockorder.txt (A1) and tools/auditseam.txt (A2),
resolved relative to --root so fixture mini-repos carry their own.
Without --require-manifests a missing file skips the corresponding
declaration checks (cycle detection always runs); the CI run on the
real tree passes --require-manifests.

Exit status: 0 clean, 1 violations, 2 usage error.
--json writes a tlsim-bench-v1 report whose `staticanalysis` block
(per-pass violation counts, combined suppression census) is validated
by tools/check_bench_json.py.
"""

import argparse
import json
import os
import re
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintsupp  # noqa: E402
import tlslint  # noqa: E402  (shared tokenizers: lex + libclang)
from lintsupp import Diagnostic  # noqa: E402

CHECK_IDS = ("A1", "A2", "A3", "A4")

SCAN_DIRS = ("src", "bench", "tools")
SOURCE_EXTS = (".h", ".cc", ".cpp")

# --- shared vocabularies -------------------------------------------------

LOCK_TYPES = {"MutexLock", "UniqueLock"}

# A2: the audited modules (tlslint's T1 set, plus core/machine.h —
# EpochRun and the start-table bookkeeping live in the header, owned
# by the same TlsMachine whose hooks observe them) and the
# mutator-primitive vocabulary. src/verify/ is exempt from primitive
# *detection*: the auditor/model-checker deliberately implement their
# own independent models of the protocol state (cross-validated by
# bisimulation, PR 4); their writes are not the simulator's state.
AUDITED_FILES = set(tlslint.T1_ALLOWED_FILES) | {"src/core/machine.h"}
A2_EXEMPT_DIRS = ("src/verify/",)
DISTINCT_MUTATORS = set(tlslint.T1_DISTINCT_MUTATORS)
GENERIC_MUTATORS = set(tlslint.T1_GENERIC_MUTATORS)
RECEIVER_HINTS = tuple(tlslint.T1_RECEIVER_HINTS)
AUDIT_HOOKS = {"onRunStart", "onEpochStart", "onSpawn", "onAccess",
               "onCommit", "onSquash", "refreshAuditView"}

# A3: allocation vocabulary.
MALLOC_FAMILY = {"malloc", "calloc", "realloc", "strdup",
                 "aligned_alloc"}
NODE_CONTAINERS = {"map", "set", "list", "multimap", "multiset",
                   "unordered_map", "unordered_set",
                   "unordered_multimap", "unordered_multiset"}
NODE_MUTATORS = {"insert", "emplace", "emplace_hint", "try_emplace",
                 "erase"}
GROWTH_CALLS = {"push_back", "emplace_back"}

# Method names too generic to resolve by "only one class defines
# it" — without a receiver hint these produce no call edge.
GENERIC_METHODS = {
    "size", "empty", "clear", "begin", "end", "insert", "erase",
    "reset", "count", "find", "at", "front", "back", "push_back",
    "pop_back", "emplace_back", "reserve", "resize", "swap", "data",
    "get", "value", "str", "c_str", "wait", "notify_all",
    "notify_one", "lock", "unlock", "contains", "push", "pop",
    "emplace", "assign", "run", "add", "init", "name", "length",
}

# A4 scope and vocabulary.
A4_SCOPE_FILES = {
    "src/sim/traceio.h", "src/sim/traceio.cc", "src/sim/varint.h",
    "src/core/traceindex.h", "src/core/traceindex.cc",
}
A4_SOURCES = {"decodeOne", "decodeBlock"}
# 0-based positions of the decoded-OUTPUT argument in each source's
# signature (varint.h: `decodeOne(p, avail, out, used)` /
# `decodeBlock(p, avail, out, count, used)`); the pointer inputs and
# the consumed-byte counts are trusted-bounded, not decoded values.
A4_SOURCE_OUT_ARG = {"decodeOne": 2, "decodeBlock": 2}
A4_SANITIZERS = {"checkedNarrow", "truncateNarrow"}
A4_BOUND_CALLS = {"min", "max", "clamp", "assert"}
A4_STREAMS = {"os", "is", "in", "out", "cout", "cerr", "cin",
              "stream", "ss", "oss", "iss"}

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "catch", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "decltype", "noexcept", "new", "delete", "throw",
    "case", "default", "do", "else", "goto", "typedef", "using",
    "static_assert", "alignas", "co_await", "co_return", "co_yield",
    "and", "or", "not", "const", "constexpr", "consteval",
    "constinit", "static", "inline", "virtual", "explicit", "friend",
    "public", "private", "protected", "template", "typename",
    "operator", "requires", "concept", "auto", "void", "bool", "char",
    "short", "int", "long", "float", "double", "signed", "unsigned",
    "true", "false", "nullptr", "this", "enum", "union", "class",
    "struct", "namespace", "extern", "mutable", "volatile", "final",
    "override",
}

#: Builtin type spellings that may head a member declaration. They
#: are KEYWORDS (so they never parse as member *names*) but tlslife's
#: reset-completeness walk needs `bool valid;`-style members in the
#: member map just like class-typed ones.
BUILTIN_TYPES = {
    "bool", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned",
}


# --- program model -------------------------------------------------------

class CallSite:
    __slots__ = ("name", "quals", "recv", "recv_class", "line", "idx")

    def __init__(self, name, quals, recv, recv_class, line, idx):
        self.name = name          # callee spelling
        self.quals = quals        # explicit A::B:: prefix, tuple
        self.recv = recv          # receiver spelling ('' if none)
        self.recv_class = recv_class  # class, when statically known
        self.line = line
        self.idx = idx            # index into the file's code tokens


class LockAcq:
    __slots__ = ("lock_id", "line", "level", "start_idx")

    def __init__(self, lock_id, line, level, start_idx):
        self.lock_id = lock_id
        self.line = line
        self.level = level        # context-stack depth at activation
        self.start_idx = start_idx


class FuncDef:
    __slots__ = ("qual", "name", "cls", "relpath", "line", "hot",
                 "body", "calls", "acqs", "nested_edges",
                 "calls_under", "node_locals", "local_reserved",
                 "aliases", "sig")

    def __init__(self, qual, name, cls, relpath, line, hot):
        self.qual = qual          # e.g. "TlsMachine::stepCpuBatch"
        self.name = name
        self.cls = cls            # enclosing/explicit class or None
        self.relpath = relpath
        self.line = line
        self.hot = hot            # carries TLSIM_HOT
        self.body = None          # (start, end) code-token indices
        self.sig = None           # (open, close) of the param parens
        self.calls = []           # [CallSite]
        self.acqs = []            # [LockAcq]
        self.nested_edges = []    # [(outer_id, inner_id, line)]
        self.calls_under = {}     # call idx -> frozenset(lock ids)
        self.node_locals = {}     # local node-container name -> line
        self.local_reserved = set()
        self.aliases = {}         # local ref name -> class name


class FileModel:
    def __init__(self, relpath, tokens, lines):
        self.relpath = relpath
        self.code = [t for t in tokens if t.kind != "comment"]
        self.tokens = tokens
        self.lines = lines
        self.funcs = []
        self.node_members = set()  # member names declared node-based
        self.reserved = set()      # receivers .reserve()d in this file
        self.member_types = {}     # (class, member name) -> type name
        self.member_decls = {}     # (class, member) -> (relpath, line)
        self.bases = {}            # class -> tuple of base-class names


def _match_forward(code, i, open_t, close_t):
    """Index of the token closing code[i] (an `open_t`), or len."""
    depth = 0
    n = len(code)
    while i < n:
        t = code[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def _match_back(code, i, open_t, close_t):
    """Index of the token opening code[i] (a `close_t`), or -1.
    Counts characters, not tokens, so libclang's single `>>` token
    closes two template-argument lists."""
    depth = 0
    while i >= 0:
        t = code[i].text
        if close_t in t:
            depth += t.count(close_t)
        elif open_t in t:
            depth -= t.count(open_t)
            if depth <= 0:
                return i
        i -= 1
    return -1


def _receiver_of(code, i):
    """Receiver spelling + known class for a call at code[i] preceded
    by '.'/'->' at i-1. Handles `x.f()`, `xs_[i].f()`, and
    `Cls::instance().f()` (returns class Cls)."""
    j = i - 2
    if j < 0:
        return "", None
    t = code[j].text
    if t == "]":  # xs_[i].f()
        depth = 1
        j -= 1
        while j >= 0 and depth:
            if code[j].text == "]":
                depth += 1
            elif code[j].text == "[":
                depth -= 1
            j -= 1
        return (code[j].text if j >= 0 and code[j].kind == "id"
                else ""), None
    if t == ")":  # g(...).f() — look for Cls::instance()
        depth = 1
        j -= 1
        while j >= 0 and depth:
            if code[j].text == ")":
                depth += 1
            elif code[j].text == "(":
                depth -= 1
            j -= 1
        if (j >= 1 and code[j].kind == "id"
                and code[j].text == "instance"
                and code[j - 1].text == "::" and j >= 2
                and code[j - 2].kind == "id"):
            return "", code[j - 2].text
        return "", None
    if code[j].kind == "id":
        return code[j].text, None
    return "", None


def _qual_chain(code, i):
    """Explicit `A::B::` prefix ending right before code[i]."""
    quals = []
    j = i - 1
    while j >= 1 and code[j].text == "::" and code[j - 1].kind == "id":
        quals.insert(0, code[j - 1].text)
        j -= 2
    return tuple(quals)


def build_file_model(relpath, tokens, lines):
    """One linear walk over the code tokens: class/namespace nesting,
    function definitions (with ctor init lists, trailing qualifiers,
    TLSIM_* annotations), call sites, lock-acquisition scopes, local
    aliases, and node-container member declarations."""
    fm = FileModel(relpath, tokens, lines)
    code = fm.code
    n = len(code)
    # Context stack: (kind, payload, ...) where kind is 'namespace'
    # (payload: name), 'class' (name), 'func' (FuncDef), 'block'.
    ctx = []
    # Lock acquisitions pending activation at their closing ')'.
    pending_acqs = []  # (activation_idx, lock_id, line)
    active_acqs = []   # [LockAcq], released as ctx unwinds

    def cur_func():
        for kind, payload in reversed(ctx):
            if kind == "func":
                return payload
        return None

    def cur_class():
        for kind, payload in reversed(ctx):
            if kind == "class":
                return payload
            if kind == "func":
                return None
        return None

    def lock_identity(args):
        """Map MutexLock ctor-arg tokens to a lock identity."""
        ids = [t.text for t in args if t.kind == "id"]
        texts = [t.text for t in args]
        # Cls::instance().meth(...): registry-handed lock.
        for k in range(len(texts) - 5):
            if (texts[k + 1] == "::" and texts[k + 2] == "instance"
                    and texts[k + 3] == "(" and texts[k + 4] == ")"
                    and texts[k + 5] == "."):
                if k + 6 < len(texts):
                    return f"{texts[k]}::{texts[k + 6]}()"
        if len(ids) == 1:
            fn = cur_func()
            owner = fn.cls if fn is not None and fn.cls else \
                cur_class()
            if owner is None:
                owner = os.path.splitext(
                    os.path.basename(relpath))[0]
            return f"{owner}::{ids[0]}"
        return ".".join(ids) if ids else "<expr>"

    i = 0
    while i < n:
        tok = code[i]
        t = tok.text

        # Activate lock acquisitions whose ctor args just closed.
        while pending_acqs and pending_acqs[0][0] <= i:
            _, lock_id, line = pending_acqs.pop(0)
            fn = cur_func()
            acq = LockAcq(lock_id, line, len(ctx), i)
            active_acqs.append(acq)
            if fn is not None:
                fn.acqs.append(acq)
                for held in active_acqs[:-1]:
                    fn.nested_edges.append(
                        (held.lock_id, lock_id, line))

        if t == "{":
            ctx.append(("block", None))
            i += 1
            continue
        if t == "}":
            if ctx:
                popped = ctx.pop()
                if popped[0] == "func" and popped[1].body:
                    popped[1].body = (popped[1].body[0], i)
            while active_acqs and active_acqs[-1].level > len(ctx):
                active_acqs.pop()
            i += 1
            continue

        if t == "namespace":
            j = i + 1
            name = ""
            while j < n and code[j].text not in ("{", ";", "="):
                if code[j].kind == "id":
                    name = code[j].text
                j += 1
            if j < n and code[j].text == "{":
                ctx.append(("namespace", name or "<anon>"))
                i = j + 1
                continue
            i = j + 1
            continue

        if t in ("class", "struct", "enum", "union") and \
                cur_func() is None:
            prev = code[i - 1].text if i else ""
            if prev in ("<", ","):  # template parameter
                i += 1
                continue
            j = i + 1
            if t == "enum" and j < n and code[j].text == "class":
                j += 1
            name = None
            bases = []
            seg_last = None       # last id of the current base segment
            after_colon = False
            while j < n and code[j].text not in ("{", ";", "("):
                tj = code[j]
                if tj.text == "<":
                    j = _match_forward(code, j, "<", ">") + 1
                    continue
                if tj.text == ":":
                    after_colon = True
                elif tj.text == ",":
                    if seg_last:
                        bases.append(seg_last)
                        seg_last = None
                elif tj.kind == "id":
                    if not after_colon:
                        if name is None:
                            name = tj.text
                    elif tj.text not in KEYWORDS:
                        seg_last = tj.text  # skips public/virtual/...
                j += 1
            if seg_last:
                bases.append(seg_last)
            if j < n and code[j].text == "{":
                ctx.append(("class", name or "<anon>"))
                if name and bases and t in ("class", "struct"):
                    fm.bases[name] = tuple(bases)
                # Node-container member declarations: scan handled
                # inline below as we walk the class body.
                i = j + 1
                continue
            i = j + 1
            continue

        # Node-container declarations: `std::map<...> name` at class
        # scope (member) or inside a function (local).
        if (t == "std" and i + 2 < n and code[i + 1].text == "::"
                and code[i + 2].text in NODE_CONTAINERS):
            j = i + 3
            if j < n and code[j].text == "<":
                j = _match_forward(code, j, "<", ">") + 1
            if j < n and code[j].kind == "id":
                var = code[j].text
                fn = cur_func()
                if fn is not None:
                    fn.node_locals[var] = code[j].line
                elif cur_class() is not None:
                    fm.node_members.add(var)
            i += 3
            continue

        # Member-variable declarations at class scope: `Type name;`,
        # `Type *name = nullptr;`, `Type name{...};`. Recorded so a
        # call through the member (`f_.bar()`) resolves to the
        # *declared* receiver type instead of a name hint.
        if (tok.kind == "id" and t not in KEYWORDS
                and cur_func() is None and cur_class() is not None
                and i >= 1 and i + 1 < n
                and code[i + 1].text in (";", "{", "=")):
            p = i - 1
            if code[p].text in ("*", "&"):
                p -= 1
            mtype = None
            if p >= 1 and code[p].text in (">", ">>"):
                # Template-typed member: `std::vector<T> name;`. The
                # recorded type is the template head (`vector`) —
                # enough for tlslife's field walks; resolve() ignores
                # it because no class is spelled that way.
                q = _match_back(code, p, "<", ">")
                if q >= 1 and code[q - 1].kind == "id":
                    mtype = code[q - 1].text
            elif p >= 0 and code[p].kind == "id" and \
                    (code[p].text not in KEYWORDS or
                     code[p].text in BUILTIN_TYPES) and \
                    (p < 1 or code[p - 1].text not in
                     ("<", ",", ".", "->")):
                mtype = code[p].text
            if mtype is not None:
                # Not inside a parameter list (default-argument
                # `Type x = v` in a prototype is not a member).
                b = i - 1
                depth = 0
                while b >= 0 and code[b].text not in (";", "{", "}"):
                    if code[b].text == ")":
                        depth += 1
                    elif code[b].text == "(":
                        depth -= 1
                    b -= 1
                if depth >= 0:
                    fm.member_types[(cur_class(), t)] = mtype
                    fm.member_decls.setdefault(
                        (cur_class(), t), (relpath, tok.line))

        # Function definitions only at namespace/class scope.
        in_body = cur_func() is not None
        if (not in_body and tok.kind == "id" and t not in KEYWORDS
                and i + 1 < n and code[i + 1].text == "("):
            quals = _qual_chain(code, i)
            prev_i = i - 1 - 2 * len(quals)
            prev = code[prev_i].text if prev_i >= 0 else ""
            if prev == "operator" or t == "TLSIM_HOT" or \
                    t.startswith("TLSIM_"):
                i += 1
                continue
            close = _match_forward(code, i + 1, "(", ")")
            j = close + 1
            # Trailing qualifiers / annotations / attributes.
            while j < n:
                tj = code[j].text
                if tj in ("const", "noexcept", "override", "final",
                          "&", "&&", "mutable", "try"):
                    j += 1
                elif tj.startswith("TLSIM_"):
                    j += 1
                    if j < n and code[j].text == "(":
                        j = _match_forward(code, j, "(", ")") + 1
                elif tj == "[" and j + 1 < n and \
                        code[j + 1].text == "[":
                    depth = 0
                    while j < n:
                        if code[j].text == "[":
                            depth += 1
                        elif code[j].text == "]":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    j += 1
                elif tj == "->":  # trailing return type
                    j += 1
                    while j < n and code[j].text not in ("{", ";"):
                        j += 1
                else:
                    break
            is_def = False
            body_open = None
            if j < n and code[j].text == "{":
                is_def, body_open = True, j
            elif j < n and code[j].text == ":":
                # Ctor init list: member(expr) / member{expr} pairs.
                k = j + 1
                while k < n:
                    tk = code[k].text
                    if tk == "(":
                        k = _match_forward(code, k, "(", ")") + 1
                    elif tk == "{":
                        if code[k - 1].kind == "id" or \
                                code[k - 1].text == ">":
                            k = _match_forward(code, k, "{", "}") + 1
                        else:
                            is_def, body_open = True, k
                            break
                    elif tk == ";":
                        break
                    else:
                        k += 1
                        continue
                    if k < n and code[k].text == "{" and \
                            code[k - 1].text in (")", "}"):
                        is_def, body_open = True, k
                        break
            if is_def:
                cls = quals[-1] if quals else cur_class()
                qual = f"{cls}::{t}" if cls else t
                # TLSIM_HOT anywhere in the declaration span (from
                # the previous statement boundary to the body brace).
                b = i - 1
                hot = False
                while b >= 0 and code[b].text not in (";", "}", "{"):
                    if code[b].text == "TLSIM_HOT":
                        hot = True
                    b -= 1
                for d in range(close + 1, body_open):
                    if code[d].text == "TLSIM_HOT":
                        hot = True
                fn = FuncDef(qual, t, cls, relpath, tok.line, hot)
                fn.body = (body_open, None)
                fn.sig = (i + 1, close)
                fm.funcs.append(fn)
                # The 'func' entry itself stands for the body brace:
                # its matching '}' pops it and closes fn.body.
                ctx.append(("func", fn))
                i = body_open + 1
                continue
            i += 1
            continue

        # Inside a function body: declarations, calls, locks, aliases.
        fn = cur_func()
        if fn is not None and tok.kind == "id" and i + 1 < n:
            nxt = code[i + 1].text
            prev = code[i - 1].text if i else ""

            # `LockType guard(args...)` — scoped acquisition.
            if t in LOCK_TYPES and i + 2 < n and \
                    code[i + 1].kind == "id" and \
                    code[i + 2].text == "(":
                close = _match_forward(code, i + 2, "(", ")")
                args = code[i + 3:close]
                pending_acqs.append(
                    (close, lock_identity(args), tok.line))
                pending_acqs.sort()
                i += 3  # walk INTO the args: ctor-arg calls are
                continue  # pre-acquisition (e.g. forStem(stem))

            # `auto &x = [ns::]Cls::instance()` alias.
            if (t == "instance" and nxt == "(" and prev == "::"
                    and i >= 2 and code[i - 2].kind == "id"):
                k = i - 2  # the class id; walk over ns:: prefixes
                while k >= 2 and code[k - 1].text == "::" and \
                        code[k - 2].kind == "id":
                    k -= 2
                if k >= 2 and code[k - 1].text == "=" and \
                        code[k - 2].kind == "id":
                    fn.aliases[code[k - 2].text] = code[i - 2].text

            if nxt == "(" and t not in KEYWORDS:
                recv, recv_class = "", None
                quals = ()
                if prev in (".", "->"):
                    recv, recv_class = _receiver_of(code, i)
                    if recv in fn.aliases:
                        recv_class = fn.aliases[recv]
                elif prev == "::":
                    quals = _qual_chain(code, i)
                elif code[i - 1].kind == "id" and \
                        code[i - 1].text not in KEYWORDS and \
                        t not in LOCK_TYPES:
                    # `Type var(args)` — record the ctor call.
                    cs = CallSite(code[i - 1].text,
                                  _qual_chain(code, i - 1), "", None,
                                  tok.line, i - 1)
                    fn.calls.append(cs)
                    fn.calls_under[len(fn.calls) - 1] = frozenset(
                        a.lock_id for a in active_acqs)
                    i += 1
                    continue
                cs = CallSite(t, quals, recv, recv_class, tok.line, i)
                fn.calls.append(cs)
                fn.calls_under[len(fn.calls) - 1] = frozenset(
                    a.lock_id for a in active_acqs)
                if t == "reserve" and recv:
                    fn.local_reserved.add(recv)
                    fm.reserved.add(recv)
        i += 1
    return fm


# --- whole-program index -------------------------------------------------

class Program:
    def __init__(self, files):
        self.files = files  # relpath -> FileModel
        self.funcs = []
        self.by_qual = {}
        self.by_name = {}
        self.node_members = set()
        self.reserved = set()
        self.class_words = {}  # class -> lowercase words, len >= 4
        self.member_types = {}  # (class, member) -> declared type
        self.member_decls = {}  # (class, member) -> (relpath, line)
        self.bases = {}         # class -> direct base-class names
        for fm in files.values():
            self.funcs.extend(fm.funcs)
            self.node_members |= fm.node_members
            self.reserved |= fm.reserved
            self.member_types.update(fm.member_types)
            self.member_decls.update(fm.member_decls)
            self.bases.update(fm.bases)
        self.classes = set()
        for fn in self.funcs:
            self.by_qual.setdefault(fn.qual, fn)
            self.by_name.setdefault(fn.name, []).append(fn)
            if fn.cls:
                self.classes.add(fn.cls)
            if fn.cls and fn.cls not in self.class_words:
                words = [w.lower() for w in
                         re.findall(r"[A-Z][a-z0-9]+|[A-Z]{2,}",
                                    fn.cls)
                         if len(w) >= 4]
                self.class_words[fn.cls] = words

    def base_chain(self, cls):
        """`cls` plus its transitive bases, nearest-first."""
        out, seen, work = [], set(), [cls]
        while work:
            c = work.pop(0)
            if c in seen:
                continue
            seen.add(c)
            out.append(c)
            work.extend(self.bases.get(c, ()))
        return out

    def member_type(self, cls, member):
        """Declared member type, searching `cls` then its bases."""
        for c in self.base_chain(cls):
            mt = self.member_types.get((c, member))
            if mt is not None:
                return mt
        return None

    def members_of(self, cls):
        """Every declared member of `cls`, inherited ones included:
        name -> (type, relpath, line). Nearest declaration wins."""
        out = {}
        for c in self.base_chain(cls):
            for (owner, name), mtype in self.member_types.items():
                if owner == c and name not in out:
                    where = self.member_decls.get(
                        (owner, name), ("", 0))
                    out[name] = (mtype, where[0], where[1])
        return out

    def resolve(self, call, caller=None):
        """CallSite -> FuncDef or None. Edges only when attribution
        is unambiguous; see DESIGN.md §4.8 for what this misses."""
        if call.recv_class:
            return self.by_qual.get(f"{call.recv_class}::{call.name}")
        if call.quals:
            fn = self.by_qual.get(
                f"{call.quals[-1]}::{call.name}")
            if fn:
                return fn
            cands = [f for f in self.by_name.get(call.name, [])
                     if f.cls is None]
            return cands[0] if len(cands) == 1 else None
        cands = self.by_name.get(call.name, [])
        if call.recv:
            # A declared member type beats any name hint: `Foo f_;`
            # in the caller's class makes `f_.bar()` resolve to
            # Foo::bar — or to nothing if Foo defines no bar, rather
            # than falling through to a substring guess the
            # declaration just contradicted.
            if caller is not None and caller.cls:
                mt = self.member_type(caller.cls, call.recv)
                if mt is not None and mt in self.classes:
                    return self.by_qual.get(f"{mt}::{call.name}")
            methods = [f for f in cands if f.cls]
            recv_l = call.recv.lower().replace("_", "")
            hinted = [f for f in methods
                      if recv_l and (recv_l in f.cls.lower() or
                                     f.cls.lower() in recv_l)]
            if len(hinted) == 1:
                return hinted[0]
            if call.name in GENERIC_METHODS:
                return None
            if len(methods) == 1:
                return methods[0]
            return None
        # Unqualified call inside a method: the caller's own class
        # wins, as in C++ name lookup.
        if caller is not None and caller.cls:
            own = self.by_qual.get(f"{caller.cls}::{call.name}")
            if own is not None:
                return own
        if call.name in GENERIC_METHODS:
            return None
        return cands[0] if len(cands) == 1 else None


# --- manifests -----------------------------------------------------------

def load_lockorder(path):
    """tools/lockorder.txt: `A < B  # why` pairs, or None if absent."""
    if not os.path.exists(path):
        return None
    pairs = set()
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            m = re.match(r"(\S+)\s*<\s*(\S+)$", line)
            if m:
                pairs.add((m.group(1), m.group(2)))
    return pairs


def load_auditseam(path):
    """tools/auditseam.txt lines: `Cls::func [audit=none] # reason`.
    Returns {qual: needs_hook} or None if absent."""
    if not os.path.exists(path):
        return None
    entries = {}
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            entries[parts[0]] = "audit=none" not in parts[1:]
    return entries


# --- passes --------------------------------------------------------------

def may_acquire(prog):
    """Fixpoint: func -> set of lock ids it may (transitively)
    acquire through resolved calls."""
    acq = {fn.qual: set(a.lock_id for a in fn.acqs)
           for fn in prog.funcs}
    resolved = {}
    for fn in prog.funcs:
        resolved[fn.qual] = [prog.resolve(c, fn) for c in fn.calls]
    changed = True
    while changed:
        changed = False
        for fn in prog.funcs:
            mine = acq[fn.qual]
            before = len(mine)
            for callee in resolved[fn.qual]:
                if callee is not None:
                    mine |= acq[callee.qual]
            if len(mine) != before:
                changed = True
    return acq, resolved


def check_a1(prog, lockorder, require_manifests, report):
    acq, resolved = may_acquire(prog)
    # Edge set: (outer, inner) -> (relpath, line) of first witness.
    edges = {}
    for fn in prog.funcs:
        for outer, inner, line in fn.nested_edges:
            edges.setdefault((outer, inner), (fn.relpath, line))
        for ci, callee in enumerate(resolved[fn.qual]):
            held = fn.calls_under.get(ci, frozenset())
            if callee is None or not held:
                continue
            for inner in acq[callee.qual]:
                for outer in held:
                    edges.setdefault((outer, inner),
                                     (fn.relpath, fn.calls[ci].line))

    for (outer, inner), (rel, line) in sorted(edges.items()):
        if outer == inner:
            report(Diagnostic(
                rel, line, "A1",
                f"lock `{inner}` may be re-acquired while already "
                "held (base/sync.h Mutex is non-recursive): "
                "self-deadlock"))
    # Cycle detection over distinct-lock edges (iterative DFS).
    graph = {}
    for (outer, inner) in edges:
        if outer != inner:
            graph.setdefault(outer, set()).add(inner)
    color = {}

    def find_cycle(start):
        stack = [(start, iter(sorted(graph.get(start, ()))))]
        path = [start]
        color[start] = 1
        while stack:
            node, it = stack[-1]
            adv = False
            for nxt in it:
                if color.get(nxt, 0) == 1:
                    return path[path.index(nxt):] + [nxt]
                if color.get(nxt, 0) == 0:
                    color[nxt] = 1
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(graph.get(nxt,
                                                             ())))))
                    adv = True
                    break
            if not adv:
                color[node] = 2
                path.pop()
                stack.pop()
        return None

    for start in sorted(graph):
        if color.get(start, 0) == 0:
            cyc = find_cycle(start)
            if cyc:
                for a, b in zip(cyc, cyc[1:]):
                    rel, line = edges[(a, b)]
                    report(Diagnostic(
                        rel, line, "A1",
                        f"lock-order cycle: acquiring `{b}` while "
                        f"holding `{a}` closes the loop "
                        f"{' -> '.join(cyc)}"))

    if lockorder is None:
        if require_manifests:
            report(Diagnostic(
                "tools/lockorder.txt", 0, "A1",
                "lock-order manifest missing; every observed "
                "nesting must be declared as `Outer < Inner`"))
        return
    for (outer, inner), (rel, line) in sorted(edges.items()):
        if outer == inner:
            continue
        if (inner, outer) in lockorder:
            report(Diagnostic(
                rel, line, "A1",
                f"lock-order inversion: acquiring `{inner}` while "
                f"holding `{outer}` contradicts the declared order "
                f"`{inner} < {outer}` (tools/lockorder.txt)"))
        elif (outer, inner) not in lockorder:
            report(Diagnostic(
                rel, line, "A1",
                f"undeclared lock nesting `{outer}` -> `{inner}`; "
                "declare it in tools/lockorder.txt as "
                f"`{outer} < {inner}` (one canonical order per pair)"))


def _primitive_calls(fn, code):
    """T1-vocabulary mutator calls + start-table writes in fn."""
    hits = []
    for cs in fn.calls:
        if not cs.recv:
            continue
        if cs.name in DISTINCT_MUTATORS:
            hits.append(cs)
        elif cs.name in GENERIC_MUTATORS and any(
                h in cs.recv.lower() for h in RECEIVER_HINTS):
            hits.append(cs)
    if fn.body and fn.body[1]:
        for k in range(*fn.body):
            if code[k].kind == "id" and \
                    "startTable" in code[k].text and k + 1 < len(code):
                nxt = code[k + 1].text
                if nxt == "[" or (nxt in (".", "->") and
                                  k + 2 < len(code) and
                                  code[k + 2].text in
                                  ("assign", "resize", "clear",
                                   "push_back")):
                    hits.append(CallSite("startTable-write", (), "",
                                         None, code[k].line, k))
    return hits


def check_a2(prog, seam, require_manifests, report):
    code_of = {rel: fm.code for rel, fm in prog.files.items()}
    prims = {}  # qual -> [CallSite]
    for fn in prog.funcs:
        if fn.relpath.startswith(A2_EXEMPT_DIRS):
            continue
        hits = _primitive_calls(fn, code_of[fn.relpath])
        if hits:
            prims[fn.qual] = hits

    # Unaudited mutators: primitive calls outside the audited modules.
    for fn in prog.funcs:
        if fn.qual in prims and fn.relpath not in AUDITED_FILES:
            for cs in prims[fn.qual]:
                report(Diagnostic(
                    fn.relpath, cs.line, "A2",
                    f"`{fn.qual}` mutates speculative state "
                    f"(`{cs.recv + '.' if cs.recv else ''}{cs.name}`)"
                    " outside the audited modules; the AuditSink "
                    "seam cannot observe this write"))

    # reaches_primitive: downward closure over resolved calls.
    resolved = {fn.qual: [prog.resolve(c, fn) for c in fn.calls]
                for fn in prog.funcs}
    reach = {q: True for q in prims}
    changed = True
    while changed:
        changed = False
        for fn in prog.funcs:
            if reach.get(fn.qual):
                continue
            for callee in resolved[fn.qual]:
                if callee is not None and reach.get(callee.qual):
                    reach[fn.qual] = True
                    changed = True
                    break

    if seam is None:
        if require_manifests:
            report(Diagnostic(
                "tools/auditseam.txt", 0, "A2",
                "audit-seam manifest missing; declare every entry "
                "point through which speculative-state mutators are "
                "reachable from outside the audited modules"))
        return

    for qual in sorted(seam):
        if qual not in prog.by_qual:
            report(Diagnostic(
                "tools/auditseam.txt", 0, "A2",
                f"manifest entry `{qual}` names no known function"))

    # External calls crossing into the audited modules onto a
    # primitive-reaching function: must be declared + instrumented.
    flagged_entries = set()
    for fn in prog.funcs:
        if fn.relpath in AUDITED_FILES:
            continue
        for ci, callee in enumerate(resolved[fn.qual]):
            if callee is None or not reach.get(callee.qual):
                continue
            if callee.relpath not in AUDITED_FILES:
                continue  # flagged above as unaudited mutator chain
            if callee.qual not in seam:
                report(Diagnostic(
                    fn.relpath, fn.calls[ci].line, "A2",
                    f"`{fn.qual}` calls `{callee.qual}`, which "
                    "reaches speculative-state mutators, but that "
                    "entry point is not declared in "
                    "tools/auditseam.txt"))
            elif seam[callee.qual] and callee.qual not in \
                    flagged_entries:
                body = callee.body
                hooked = False
                code = code_of[callee.relpath]
                if body and body[1]:
                    hooked = any(code[k].kind == "id" and
                                 code[k].text in AUDIT_HOOKS
                                 for k in range(*body))
                if not hooked:
                    flagged_entries.add(callee.qual)
                    report(Diagnostic(
                        callee.relpath, callee.line, "A2",
                        f"declared audit-seam entry `{callee.qual}` "
                        "never calls an AuditSink hook; instrument "
                        "it or declare `audit=none # reason` in "
                        "tools/auditseam.txt"))


def check_a3(prog, supp_of, report):
    code_of = {rel: fm.code for rel, fm in prog.files.items()}
    resolved = {fn.qual: [prog.resolve(c, fn) for c in fn.calls]
                for fn in prog.funcs}
    roots = [fn for fn in prog.funcs if fn.hot]
    # BFS from hot roots; `via` records the call chain for messages.
    closure = {}
    queue = []
    for fn in roots:
        closure[fn.qual] = fn.qual
        queue.append(fn)
    while queue:
        fn = queue.pop(0)
        supp = supp_of.get(fn.relpath)
        for ci, callee in enumerate(resolved[fn.qual]):
            if callee is None or callee.qual in closure:
                continue
            # A reasoned allow on the call line prunes a cold edge.
            if supp and supp.suppresses(fn.calls[ci].line, "A3"):
                continue
            closure[callee.qual] = closure[fn.qual]
            queue.append(callee)

    for fn in prog.funcs:
        root = closure.get(fn.qual)
        if root is None or not fn.body or not fn.body[1]:
            continue
        code = code_of[fn.relpath]
        where = f"TLSIM_HOT closure (root `{root}`)" \
            if root != fn.qual else "TLSIM_HOT function"
        for k in range(*fn.body):
            if code[k].kind == "id" and code[k].text == "new":
                report(Diagnostic(
                    fn.relpath, code[k].line, "A3",
                    f"`new` in `{fn.qual}`, {where}; hot paths "
                    "must use the pools/arenas (PR 6)"))
        for ci, cs in enumerate(fn.calls):
            if cs.name in MALLOC_FAMILY:
                report(Diagnostic(
                    fn.relpath, cs.line, "A3",
                    f"`{cs.name}()` in `{fn.qual}`, {where}"))
            elif cs.name in GROWTH_CALLS and cs.recv:
                if cs.recv in fn.local_reserved or \
                        cs.recv in prog.reserved:
                    continue
                report(Diagnostic(
                    fn.relpath, cs.line, "A3",
                    f"`{cs.recv}.{cs.name}()` in `{fn.qual}`, "
                    f"{where}, and `{cs.recv}` is never reserve()d "
                    "anywhere in the tree: steady-state reallocation "
                    "on the hot path"))
            elif cs.name in NODE_MUTATORS and cs.recv and (
                    cs.recv in prog.node_members or
                    cs.recv in fn.node_locals):
                report(Diagnostic(
                    fn.relpath, cs.line, "A3",
                    f"`{cs.recv}.{cs.name}()` in `{fn.qual}`, "
                    f"{where}: `{cs.recv}` is a node-based container "
                    "(per-element allocation); use a flat structure "
                    "(base/lineset.h, open-addressed tables)"))
        for var, line in fn.node_locals.items():
            report(Diagnostic(
                fn.relpath, line, "A3",
                f"node-based container local `{var}` in "
                f"`{fn.qual}`, {where}"))


def check_a4(prog, report):
    for rel, fm in sorted(prog.files.items()):
        if rel not in A4_SCOPE_FILES:
            continue
        code = fm.code
        for fn in fm.funcs:
            if not fn.body or not fn.body[1]:
                continue
            tainted = set()
            start, end = fn.body
            k = start
            while k < end:
                tok = code[k]
                t = tok.text
                if tok.kind != "id":
                    k += 1
                    continue
                nxt = code[k + 1].text if k + 1 < end else ""
                prev = code[k - 1].text if k > 0 else ""

                # Source: the decoded-output argument (`&x` or the
                # bare out-block pointer) becomes tainted; the input
                # pointer and byte counts stay trusted.
                if t in A4_SOURCES and nxt == "(":
                    close = _match_forward(code, k + 1, "(", ")")
                    out_pos = A4_SOURCE_OUT_ARG.get(t)
                    pos = 0
                    depth = 0
                    a = k + 2
                    while a < close:
                        ta = code[a].text
                        if ta in ("(", "["):
                            depth += 1
                        elif ta in (")", "]"):
                            depth -= 1
                        elif ta == "," and depth == 0:
                            pos += 1
                        elif pos == out_pos and code[a].kind == "id":
                            tainted.add(ta)
                        a += 1
                    k = close + 1
                    continue

                nxt2 = code[k + 2].text if k + 2 < end else ""
                # `==`, `<=`, `>=`, `!=` lex as two tokens; detect
                # comparison neighborhoods accordingly.
                is_cmp = (nxt in ("<", ">")
                          or prev in ("<", ">")
                          or (nxt == "=" and nxt2 == "=")
                          or (prev == "=" and k >= 2 and
                              code[k - 2].text in ("=", "!", "<",
                                                   ">")))
                if t in tainted:
                    # Sanitized at this use?
                    if prev == "<" and k >= 2 and \
                            code[k - 2].text in A4_SANITIZERS:
                        pass  # template arg, not a value use
                    elif _wrapped_in(code, start, k, A4_SANITIZERS):
                        pass  # checkedNarrow<T>(t): sanctioned use
                    elif is_cmp:
                        # A bounds comparison sanitizes the variable
                        # from here on (heuristic; see DESIGN.md
                        # §4.8 for why this under-approximates).
                        tainted.discard(t)
                    elif prev == "[" or \
                            _inside_subscript(code, start, k):
                        report(Diagnostic(
                            rel, tok.line, "A4",
                            f"decoded value `{t}` indexes an array "
                            f"in `{fn.qual}` without a "
                            "checkedNarrow/truncateNarrow or bounds "
                            "check (base/narrow.h): untrusted trace "
                            "bytes choose the element"))
                        tainted.discard(t)  # one diag per variable
                    elif prev in ("<<", ">>") and \
                            code[k - 2].text not in A4_STREAMS:
                        report(Diagnostic(
                            rel, tok.line, "A4",
                            f"decoded value `{t}` is a shift amount "
                            f"in `{fn.qual}` without narrowing; a "
                            "shift by >= width is undefined "
                            "behavior on untrusted input"))
                        tainted.discard(t)

                # Propagation / sanitization by (compound)
                # assignment: `t = rhs`, `t += rhs`, ...
                assign = None
                if nxt == "=" and nxt2 != "=" and \
                        prev not in ("=", "!", "<", ">"):
                    assign = k + 2
                elif nxt in ("+", "-", "|", "&", "^") and \
                        nxt2 == "=":
                    assign = k + 3
                if assign is not None:
                    rhs_ids = []
                    rhs_sanitized = False
                    m = assign
                    depth = 0
                    while m < end and (code[m].text != ";" or depth):
                        tm = code[m].text
                        if tm in ("(", "["):
                            depth += 1
                        elif tm in (")", "]"):
                            depth -= 1
                        if code[m].kind == "id":
                            if tm in A4_SANITIZERS or \
                                    tm in A4_BOUND_CALLS:
                                rhs_sanitized = True
                            rhs_ids.append(tm)
                        m += 1
                    src = any(r in tainted or r in A4_SOURCES
                              for r in rhs_ids)
                    compound = assign == k + 3
                    if src and not rhs_sanitized:
                        tainted.add(t)
                    elif t in tainted and not compound:
                        tainted.discard(t)
                k += 1


def _wrapped_in(code, start, k, wrappers):
    """Is code[k] inside the argument list of a call to one of
    `wrappers` — `wrapper(..x..)` or `wrapper<T>(..x..)`?"""
    depth = 0
    j = k - 1
    while j >= start:
        t = code[j].text
        if t == ")":
            depth += 1
        elif t == "(":
            if depth == 0:
                prev = code[j - 1] if j - 1 >= start else None
                if prev is None:
                    return False
                if prev.kind == "id":
                    return prev.text in wrappers
                if prev.text == ">":  # wrapper<T>(x)
                    b = j - 1
                    d = 0
                    while b >= start:
                        if code[b].text == ">":
                            d += 1
                        elif code[b].text == "<":
                            d -= 1
                            if d == 0:
                                break
                        b -= 1
                    return (b - 1 >= start and
                            code[b - 1].kind == "id" and
                            code[b - 1].text in wrappers)
                return False
            depth -= 1
        elif t in (";", "{", "}"):
            return False
        j -= 1
    return False


def _inside_subscript(code, start, k, max_back=24):
    """Is code[k] inside a [...] subscript (bounded lookback)?"""
    depth = 0
    j = k - 1
    floor = max(start, k - max_back)
    while j >= floor:
        t = code[j].text
        if t == "]":
            depth += 1
        elif t == "[":
            if depth == 0:
                return True
            depth -= 1
        elif t in (";", "{", "}"):
            return False
        j -= 1
    return False


# --- driver --------------------------------------------------------------

def find_sources(root):
    out = []
    for d in SCAN_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            for f in sorted(files):
                if f.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, f)
                    out.append((full,
                                os.path.relpath(full, root)
                                .replace(os.sep, "/")))
    return out


def write_json(path, engine, enabled, files_scanned, per_check,
               census, wall):
    doc = {
        "schema": "tlsim-bench-v1",
        "bench": "tlsa",
        "quick": False,
        "jobs": 1,
        "wall_seconds": wall,
        "simulated_cycles": 0,
        "staticanalysis": {
            "engine": engine,
            "checks_run": len(enabled),
            "files_scanned": files_scanned,
            "violations": sum(per_check.values()),
            "suppressions": sum(census.values()),
            "suppressions_by_check": dict(sorted(census.items())),
        },
        "results": [
            {"name": c, "violations": per_check.get(c, 0)}
            for c in sorted(set(enabled) | set(per_check))
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(
        description="whole-program semantic static analysis")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--engine", default="auto",
                    choices=("auto", "libclang", "lex"))
    ap.add_argument("--check", default=None,
                    help="comma-separated subset of passes "
                         "(default: all)")
    ap.add_argument("--json", default=None, metavar="FILE")
    ap.add_argument("--require-manifests", action="store_true",
                    help="missing lockorder.txt/auditseam.txt is an "
                         "error (the real-tree CI configuration)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for c in CHECK_IDS:
            print(c)
        return 0

    if args.check:
        enabled = [c.strip() for c in args.check.split(",")
                   if c.strip()]
        bad = [c for c in enabled if c not in CHECK_IDS]
        if bad:
            print(f"tlsa: unknown check(s): {', '.join(bad)}",
                  file=sys.stderr)
            return 2
    else:
        enabled = list(CHECK_IDS)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)

    sources = find_sources(root)
    if not sources:
        print("tlsa: no sources found", file=sys.stderr)
        return 2

    start = time.monotonic()
    tokenizer, engine = tlslint.make_tokenizer(args.engine)

    files = {}
    supp_of = {}
    diags = []
    census = {}
    for full, rel in sources:
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            diags.append(Diagnostic(rel, 0, "io", str(e)))
            continue
        tokens = tokenizer(full, text)
        lines = text.splitlines()
        files[rel] = build_file_model(rel, tokens, lines)
        supp = lintsupp.Suppressions(rel, tokens, lines, "tlsa")
        supp_of[rel] = supp
        diags.extend(supp.diags)
        lintsupp.merge_census(census, supp.by_check)

    prog = Program(files)

    def report(d):
        supp = supp_of.get(d.path)
        if supp is None or not supp.suppresses(d.line, d.check):
            diags.append(d)

    if "A1" in enabled:
        check_a1(prog,
                 load_lockorder(os.path.join(root, "tools",
                                             "lockorder.txt")),
                 args.require_manifests, report)
    if "A2" in enabled:
        check_a2(prog,
                 load_auditseam(os.path.join(root, "tools",
                                             "auditseam.txt")),
                 args.require_manifests, report)
    if "A3" in enabled:
        check_a3(prog, supp_of, report)
    if "A4" in enabled:
        check_a4(prog, report)

    diags.sort(key=lambda d: (d.path, d.line, d.check, d.message))
    seen = set()
    uniq = []
    for d in diags:
        key = (d.path, d.line, d.check, d.message)
        if key not in seen:
            seen.add(key)
            uniq.append(d)
    diags = uniq
    per_check = {}
    for d in diags:
        per_check[d.check] = per_check.get(d.check, 0) + 1
        if not args.quiet:
            print(d)

    if args.json:
        write_json(args.json, engine, enabled, len(sources),
                   per_check, census, time.monotonic() - start)

    if not args.quiet:
        n_funcs = len(prog.funcs)
        verdict = (f"{len(diags)} violation(s)" if diags else "clean")
        print(f"tlsa[{engine}]: {len(sources)} files, {n_funcs} "
              f"functions, {len(enabled)} passes, "
              f"{sum(census.values())} reasoned suppression(s): "
              f"{verdict}")
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
