# ctest script for lint_tlslint_json: run tlslint over the tree with
# --json, then validate the report (including its staticanalysis
# block) with check_bench_json.py. Two steps, one test, so a schema
# drift between the two tools fails CI immediately.
#
# Inputs: -DPYTHON=... -DSOURCE_DIR=... -DOUT=...

execute_process(
    COMMAND ${PYTHON} ${SOURCE_DIR}/tools/tlslint.py
            --root ${SOURCE_DIR} --json ${OUT} -q
    RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR "tlslint found violations (exit ${lint_rc})")
endif()

execute_process(
    COMMAND ${PYTHON} ${SOURCE_DIR}/tools/check_bench_json.py ${OUT}
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_bench_json rejected the tlslint report (exit ${check_rc})")
endif()
