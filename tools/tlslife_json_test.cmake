# ctest script for lint_tlslife_json: run the tlslife object-lifetime
# analyzer over the tree with --json (manifests required — the
# real-tree CI configuration), then validate the report with
# check_bench_json.py. Two steps, one test, so a schema drift between
# the two tools fails CI immediately.
#
# Inputs: -DPYTHON=... -DSOURCE_DIR=... -DOUT=...

execute_process(
    COMMAND ${PYTHON} ${SOURCE_DIR}/tools/tlslife.py
            --root ${SOURCE_DIR} --require-manifests --json ${OUT} -q
    RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR "tlslife found violations (exit ${lint_rc})")
endif()

execute_process(
    COMMAND ${PYTHON} ${SOURCE_DIR}/tools/check_bench_json.py ${OUT}
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_bench_json rejected the tlslife report (exit ${check_rc})")
endif()
