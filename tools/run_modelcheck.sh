#!/usr/bin/env bash
# Nightly model-checking sweep (DESIGN.md Section 4.4).
#
# The fast `modelcheck` ctest label covers the CI bounds (2 epochs at
# program length 2, 3 epochs at length 1, all mutations, a bisim
# smoke). This script runs the expensive tier on top:
#
#   1. the FULL 3-epoch x k=2 x 2-line bound at program length 2 —
#      every interleaving of every canonical interacting tuple. This
#      is hours of single-core work; it is sharded so interrupted runs
#      resume at shard granularity (completed shards leave their JSON
#      behind and are skipped on re-run);
#   2. a 1000-sample model/machine bisimulation sweep (the acceptance
#      bar for bit-identical schedule replay);
#   3. the three seeded protocol mutations, each of which must be
#      caught at its documented minimal bound;
#   4. the whole-thread (Figure 4(a), no start table) protocol variant
#      at the CI bounds;
#   5. a probe-hash equality check: Figure 5 with --det-probe at
#      --jobs=1 and --jobs=2 over one shared trace cache must produce
#      identical per-stage canonical digests (bench_compare
#      --expect-identical --require-det), the nightly restatement of
#      the `det` ctest label.
#
# Usage: tools/run_modelcheck.sh [BUILD_DIR] [SHARDS]
#   BUILD_DIR  tree containing tools/tlsmc (default: build)
#   SHARDS     shard count for the deep sweep (default: 16)
#
# Results land in BUILD_DIR/modelcheck-nightly/*.json. Exit status 0
# only if every phase passes.

set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-$root/build}
shards=${2:-16}
tlsmc=$build/tools/tlsmc
out=$build/modelcheck-nightly
mkdir -p "$out"

if [[ ! -x $tlsmc ]]; then
    echo "run_modelcheck.sh: $tlsmc not found; build the 'tlsmc'" \
         "target first" >&2
    exit 2
fi

echo "=== deep sweep: 3 epochs x k=2 x 2 lines, len=2," \
     "$shards shards ==="
for ((i = 0; i < shards; ++i)); do
    json=$out/sweep_3ep_len2_shard${i}_of_${shards}.json
    if [[ -s $json ]] && grep -q '"status": 0' "$json"; then
        echo "shard $i/$shards: already complete, skipping"
        continue
    fi
    echo "shard $i/$shards..."
    "$tlsmc" --sweep --epochs=3 --k=2 --lines=2 --len=2 \
        --shard="$i/$shards" --progress --json="$json"
done

echo "=== bisimulation: 1000 sampled schedules ==="
"$tlsmc" --bisim --epochs=3 --k=2 --lines=2 --len=3 \
    --samples=1000 --seed=0x5eed \
    --json="$out/bisim_1000.json"

echo "=== seeded mutations (each must be caught) ==="
"$tlsmc" --mutate=wrong-start-table --epochs=3 --len=2 \
    --json="$out/mutate_wrong_start_table.json"
"$tlsmc" --mutate=missed-secondary --epochs=3 --len=1 \
    --json="$out/mutate_missed_secondary.json"
"$tlsmc" --mutate=premature-recycle --epochs=2 --len=2 \
    --json="$out/mutate_premature_recycle.json"

echo "=== whole-thread (Figure 4(a)) variant at the CI bounds ==="
"$tlsmc" --sweep --whole-thread --epochs=2 --len=2 --cross-check \
    --json="$out/sweep_whole_thread.json"
"$tlsmc" --sweep --whole-thread --epochs=3 --len=1 \
    --json="$out/sweep_whole_thread_3ep.json"

echo "=== determinism: probe-hash equality across --jobs ==="
fig5=$build/bench/bench_figure5_overall
if [[ ! -x $fig5 ]]; then
    echo "run_modelcheck.sh: $fig5 not found; build the" \
         "'bench_figure5_overall' target first" >&2
    exit 2
fi
"$fig5" --quick --txns=3 --jobs=1 --det-probe \
    --trace-cache="$out/det-tc" --json="$out/det_probe_jobs1.json"
"$fig5" --quick --txns=3 --jobs=2 --det-probe \
    --trace-cache="$out/det-tc" --json="$out/det_probe_jobs2.json"
python3 "$root/tools/bench_compare.py" \
    --expect-identical --require-det --quiet \
    "$out/det_probe_jobs1.json" "$out/det_probe_jobs2.json"

echo "=== all modelcheck phases passed; results in $out ==="
